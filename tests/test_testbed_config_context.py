"""Tests for testbed configuration, control space and context vectors."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ran.phy import MAX_MCS
from repro.testbed.config import (
    ControlPolicy,
    CostWeights,
    ServiceConstraints,
    TestbedConfig,
    default_control_grid,
)
from repro.testbed.context import Context

fractions = st.floats(min_value=0.0, max_value=1.0)


class TestControlPolicy:
    def test_roundtrip(self):
        policy = ControlPolicy(0.5, 0.6, 0.7, 0.8)
        again = ControlPolicy.from_array(policy.to_array())
        assert again == policy

    def test_validation(self):
        with pytest.raises(ValueError):
            ControlPolicy(1.5, 0.5, 0.5, 0.5)

    def test_from_array_wrong_size(self):
        with pytest.raises(ValueError):
            ControlPolicy.from_array([0.1, 0.2])

    def test_radio_policy_mapping(self):
        policy = ControlPolicy(0.5, 0.3, 0.5, 1.0)
        radio = policy.radio_policy()
        assert radio.airtime == 0.3
        assert radio.max_mcs == MAX_MCS

    def test_max_resources(self):
        policy = ControlPolicy.max_resources()
        np.testing.assert_array_equal(policy.to_array(), [1, 1, 1, 1])

    @given(fractions, fractions, fractions, fractions)
    @settings(max_examples=40, deadline=None)
    def test_property_roundtrip(self, a, b, c, d):
        policy = ControlPolicy(a, b, c, d)
        np.testing.assert_allclose(
            ControlPolicy.from_array(policy.to_array()).to_array(),
            policy.to_array(),
        )


class TestCostWeights:
    def test_cost_formula(self):
        weights = CostWeights(delta1=2.0, delta2=3.0)
        assert weights.cost(10.0, 4.0) == pytest.approx(32.0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            CostWeights(delta1=-1.0)


class TestServiceConstraints:
    def test_satisfied(self):
        c = ServiceConstraints(d_max_s=0.4, rho_min=0.5)
        assert c.satisfied(0.3, 0.6)
        assert not c.satisfied(0.5, 0.6)
        assert not c.satisfied(0.3, 0.4)

    def test_boundary_inclusive(self):
        c = ServiceConstraints(d_max_s=0.4, rho_min=0.5)
        assert c.satisfied(0.4, 0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            ServiceConstraints(d_max_s=0.0)
        with pytest.raises(ValueError):
            ServiceConstraints(rho_min=1.5)


class TestControlGrid:
    def test_paper_cardinality(self):
        """11 levels per axis give |X| = 14641 as in the paper."""
        assert default_control_grid(11).shape == (14641, 4)

    def test_physical_minima(self):
        grid = default_control_grid(11, min_resolution=0.25, min_airtime=0.1)
        assert grid[:, 0].min() == pytest.approx(0.25)
        assert grid[:, 1].min() == pytest.approx(0.1)
        assert grid[:, 2].min() == 0.0
        assert grid[:, 3].min() == 0.0

    def test_contains_max_resources(self):
        grid = default_control_grid(5)
        assert any(np.allclose(row, [1, 1, 1, 1]) for row in grid)

    def test_config_grid_uses_settings(self):
        config = TestbedConfig(n_levels=5)
        assert config.control_grid().shape == (625, 4)

    def test_all_rows_valid_policies(self):
        for row in default_control_grid(4):
            ControlPolicy.from_array(row)  # must not raise


class TestTestbedConfig:
    def test_defaults_valid(self):
        TestbedConfig()

    def test_with_load_multiplier(self):
        config = TestbedConfig().with_load_multiplier(10.0)
        assert config.load_multiplier == 10.0
        assert TestbedConfig().load_multiplier == 1.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"mac_efficiency": 0.0},
            {"n_levels": 1},
            {"images_per_measurement": 0},
            {"load_multiplier": 0.0},
            {"max_users": 0},
        ],
    )
    def test_invalid_configs(self, kwargs):
        with pytest.raises(ValueError):
            TestbedConfig(**kwargs)


class TestContext:
    def test_from_snrs(self):
        context = Context.from_snrs([35.0, 35.0])
        assert context.n_users == 2
        assert context.cqi_mean == pytest.approx(15.0)
        assert context.cqi_var == pytest.approx(0.0)

    def test_heterogeneous_variance(self):
        context = Context.from_snrs([35.0, 0.0])
        assert context.cqi_var > 0

    def test_to_array_normalised(self):
        context = Context.from_snrs([35.0, 10.0, 5.0])
        arr = context.to_array(max_users=8)
        assert arr.shape == (3,)
        assert np.all(arr >= 0) and np.all(arr <= 1.5)

    def test_dimension_matches_array(self):
        context = Context.from_snrs([20.0])
        assert context.to_array().size == Context.dimension()

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Context.from_snrs([])

    def test_validation(self):
        with pytest.raises(ValueError):
            Context(n_users=0, cqi_mean=10.0, cqi_var=0.0)
        with pytest.raises(ValueError):
            Context(n_users=1, cqi_mean=20.0, cqi_var=0.0)

    @given(st.lists(st.floats(-10, 45, allow_nan=False), min_size=1, max_size=8))
    @settings(max_examples=50, deadline=None)
    def test_property_aggregation_invariant_to_order(self, snrs):
        a = Context.from_snrs(snrs)
        b = Context.from_snrs(list(reversed(snrs)))
        assert a.n_users == b.n_users
        assert a.cqi_mean == pytest.approx(b.cqi_mean)
        assert a.cqi_var == pytest.approx(b.cqi_var, abs=1e-9)
