"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import ensure_rng, spawn_rngs


class TestEnsureRng:
    def test_none_returns_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(7).random(5)
        b = ensure_rng(7).random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        assert not np.allclose(ensure_rng(1).random(5), ensure_rng(2).random(5))

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_numpy_integer_seed(self):
        assert isinstance(ensure_rng(np.int64(3)), np.random.Generator)

    def test_invalid_type_raises(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_zero_count(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_children_independent(self):
        a, b = spawn_rngs(0, 2)
        assert not np.allclose(a.random(10), b.random(10))

    def test_reproducible_from_seed(self):
        first = [g.random(3).tolist() for g in spawn_rngs(5, 3)]
        second = [g.random(3).tolist() for g in spawn_rngs(5, 3)]
        assert first == second
