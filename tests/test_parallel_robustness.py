"""Sweep-engine robustness: manifest corruption, retries, quarantine.

Drives :func:`repro.experiments.parallel.run_sweep` through crash/hang
fault plans and corrupted checkpoint manifests, asserting the engine
recovers without losing completed work (``docs/ROBUSTNESS.md``).
"""

import json

import pytest

import repro.experiments  # noqa: F401  (populate the spec registry)
from repro.experiments import spec as spec_registry
from repro.experiments.parallel import run_sweep
from repro.faults import FaultPlan, FaultSpec, uninstall
from repro.telemetry import runtime as telemetry


@pytest.fixture(autouse=True)
def _fault_free():
    """Every test starts and ends with no plan installed."""
    uninstall()
    yield
    uninstall()


@pytest.fixture
def convergence():
    spec = spec_registry.get("convergence")
    params = spec.resolve({
        "delta2": (1.0, 2.0), "periods": 3, "repetitions": 2, "levels": 3,
    })
    return spec, params  # 4 cells


@pytest.fixture
def metrics():
    """Parent-side metrics collection around the test body."""
    telemetry.reset_metrics()
    telemetry.enable()
    yield telemetry.metrics_snapshot
    telemetry.disable()
    telemetry.reset_metrics()


def _counter(snapshot, name):
    return snapshot().get("counters", {}).get(name, 0)


def _manifest_lines(path):
    return [line for line in path.read_text().splitlines() if line.strip()]


# -- manifest corruption -------------------------------------------------


def test_corrupt_trailing_line_keeps_completed_prefix(
        convergence, tmp_path, metrics):
    spec, params = convergence
    first = run_sweep(spec, params, seed=3, jobs=1, out=tmp_path)
    manifest = first.manifest_path
    lines = _manifest_lines(manifest)
    # Simulate a truncated final append (crash/full disk mid-write).
    manifest.write_text("\n".join(lines[:-1]) + "\n"
                        + lines[-1][: len(lines[-1]) // 2] + "\n")

    second = run_sweep(spec, params, seed=3, jobs=1, out=tmp_path)
    assert second.resumed == len(first.cells) - 1  # only the tail re-ran
    assert _counter(metrics, "sweep.manifest.corrupt_lines") == 1
    assert [c.rows for c in second.cells] == [c.rows for c in first.cells]


def test_corrupt_middle_line_skips_the_tail(convergence, tmp_path, metrics):
    spec, params = convergence
    first = run_sweep(spec, params, seed=3, jobs=1, out=tmp_path)
    lines = _manifest_lines(first.manifest_path)
    lines[2] = "{not json"  # second record of four
    first.manifest_path.write_text("\n".join(lines) + "\n")

    second = run_sweep(spec, params, seed=3, jobs=1, out=tmp_path)
    assert second.resumed == 1  # only the record before the bad line
    # The bad line plus the two intact-but-unreachable tail records.
    assert _counter(metrics, "sweep.manifest.corrupt_lines") == 3
    assert [c.rows for c in second.cells] == [c.rows for c in first.cells]


def test_resume_rewrites_the_manifest_clean(convergence, tmp_path):
    spec, params = convergence
    first = run_sweep(spec, params, seed=3, jobs=1, out=tmp_path)
    manifest = first.manifest_path
    with manifest.open("a") as handle:
        handle.write('{"cell_id": "truncated...\n')

    run_sweep(spec, params, seed=3, jobs=1, out=tmp_path)
    records = [json.loads(line) for line in _manifest_lines(manifest)]
    assert len(records) == 1 + len(first.cells)  # header + every cell, parseable


# -- retries and quarantine ----------------------------------------------


def test_serial_crash_is_retried_and_rows_match_fault_free(
        convergence, metrics):
    spec, params = convergence
    clean = run_sweep(spec, params, seed=5, jobs=1, out=None)
    plan = FaultPlan(specs=(
        FaultSpec(kind="worker", mode="crash", at=(0, 2), max_events=2),
    ))
    chaotic = run_sweep(spec, params, seed=5, jobs=1, out=None,
                        fault_plan=plan)
    assert chaotic.retries == 2
    assert chaotic.quarantined == []
    assert _counter(metrics, "sweep.cell.retries") == 2
    # The retry re-runs the cell from its own seed node: bit-identical.
    assert [c.rows for c in chaotic.cells] == [c.rows for c in clean.cells]


def test_pool_crash_is_retried_and_rows_match_fault_free(convergence):
    spec, params = convergence
    clean = run_sweep(spec, params, seed=5, jobs=1, out=None)
    plan = FaultPlan(specs=(
        FaultSpec(kind="worker", mode="crash", at=(0,), max_events=1),
    ))
    chaotic = run_sweep(spec, params, seed=5, jobs=2, out=None,
                        fault_plan=plan)
    assert chaotic.retries >= 1
    assert chaotic.quarantined == []
    assert [c.rows for c in chaotic.cells] == [c.rows for c in clean.cells]


def test_poison_cell_is_quarantined_then_recovers_on_resume(
        convergence, tmp_path, metrics):
    spec, params = convergence
    plan = FaultPlan(specs=(
        FaultSpec(kind="worker", mode="crash", at=(1,)),
    ))
    # No retry budget: the injected crash poisons the cell outright.
    poisoned = run_sweep(spec, params, seed=5, jobs=1, out=tmp_path,
                         fault_plan=plan, max_retries=0)
    assert len(poisoned.quarantined) == 1
    bad = poisoned.quarantined[0]
    assert bad.index == 1 and bad.rows == [] and "InjectedWorkerCrash" in bad.error
    assert _counter(metrics, "sweep.cell.quarantined") == 1
    record = json.loads(_manifest_lines(poisoned.manifest_path)[2])
    assert record["quarantined"] is True and record["cell_id"] == bad.cell_id

    # A fault-free re-run resumes the healthy cells and heals the poison.
    healed = run_sweep(spec, params, seed=5, jobs=1, out=tmp_path)
    assert healed.resumed == len(poisoned.cells) - 1
    assert healed.quarantined == []
    assert all(c.rows for c in healed.cells)


def test_hung_worker_times_out_and_the_retry_recovers(convergence, metrics):
    spec, params = convergence
    plan = FaultPlan(specs=(
        FaultSpec(kind="worker", mode="hang", at=(0,), magnitude=3.0,
                  max_events=1),
    ))
    result = run_sweep(spec, params, seed=5, jobs=2, out=None,
                       fault_plan=plan, cell_timeout_s=0.5,
                       retry_backoff_s=0.0)
    assert _counter(metrics, "sweep.cell.timeouts") == 1
    assert result.retries >= 1
    assert result.quarantined == []
    assert all(c.rows for c in result.cells)


def test_run_sweep_rejects_negative_max_retries(convergence):
    spec, params = convergence
    with pytest.raises(ValueError, match="max_retries"):
        run_sweep(spec, params, max_retries=-1)
