"""Tests for the multi-service substrate and scheduler variants."""

import numpy as np
import pytest

from repro.experiments.multiservice import (
    MultiServiceSetting,
    run_per_slice_edgebol,
    summary,
)
from repro.ran.channel import constant_trace
from repro.ran.mac import RadioPolicy, RoundRobinScheduler
from repro.ran.schedulers import EqualRateScheduler, ProportionalFairScheduler
from repro.testbed.config import ControlPolicy, TestbedConfig
from repro.testbed.multiservice import MultiServiceEnvironment, SliceSpec


def make_env(n_a=1, n_b=1, config=None):
    return MultiServiceEnvironment(
        slices=[
            SliceSpec(name="a", channels=tuple(
                constant_trace(33.0) for _ in range(n_a)
            )),
            SliceSpec(name="b", channels=tuple(
                constant_trace(25.0) for _ in range(n_b)
            )),
        ],
        config=config or TestbedConfig(n_levels=5),
        rng=0,
    )


class TestMultiServiceEnvironment:
    def test_contexts_per_slice(self):
        env = make_env(n_a=1, n_b=2)
        contexts = env.observe_contexts()
        assert len(contexts) == 2
        assert contexts[0].n_users == 1
        assert contexts[1].n_users == 2

    def test_step_returns_observation_per_slice(self):
        env = make_env()
        observations = env.step([
            ControlPolicy(1.0, 0.5, 1.0, 1.0),
            ControlPolicy(1.0, 0.4, 1.0, 1.0),
        ])
        assert len(observations) == 2
        for obs in observations:
            assert np.isfinite(obs.delay_s)
            assert obs.total_rate_hz > 0

    def test_airtime_admission_control(self):
        """Oversubscribed budgets are scaled back proportionally."""
        env = make_env()
        airtimes = env._normalised_airtimes([
            ControlPolicy(1.0, 1.0, 1.0, 1.0),
            ControlPolicy(1.0, 1.0, 1.0, 1.0),
        ])
        assert sum(airtimes) == pytest.approx(1.0)

    def test_under_subscription_untouched(self):
        env = make_env()
        airtimes = env._normalised_airtimes([
            ControlPolicy(1.0, 0.3, 1.0, 1.0),
            ControlPolicy(1.0, 0.4, 1.0, 1.0),
        ])
        assert airtimes == [0.3, 0.4]

    def test_gpu_contention_raises_delay(self):
        """A busy second slice slows the first slice's GPU responses."""
        quiet = make_env(n_a=1, n_b=1)
        alone = quiet.step([
            ControlPolicy(1.0, 0.5, 1.0, 1.0),
            ControlPolicy(0.25, 0.1, 1.0, 1.0),   # barely loads the GPU
        ])[0]
        busy = make_env(n_a=1, n_b=3).step([
            ControlPolicy(1.0, 0.5, 1.0, 1.0),
            ControlPolicy(0.25, 0.5, 1.0, 1.0),   # floods the GPU
        ])[0]
        assert busy.gpu_delay_s > alone.gpu_delay_s

    def test_policy_count_validated(self):
        env = make_env()
        with pytest.raises(ValueError):
            env.step([ControlPolicy(1.0, 0.5, 1.0, 1.0)])

    def test_empty_slices_rejected(self):
        with pytest.raises(ValueError):
            MultiServiceEnvironment(slices=[])

    def test_unserved_slice_reports_inf(self):
        env = make_env()
        observations = env.step([
            ControlPolicy(1.0, 0.0, 1.0, 1.0),
            ControlPolicy(1.0, 0.5, 1.0, 1.0),
        ])
        assert observations[0].delay_s == float("inf")


class TestPerSliceEdgeBOL:
    def test_both_slices_learn_and_stay_feasible(self):
        setting = MultiServiceSetting(n_periods=60, n_levels=5)
        ar_log, sv_log = run_per_slice_edgebol(setting, seed=0)
        rows = summary(ar_log, sv_log)
        for row in rows:
            assert row["delay_violation_rate"] < 0.25
            assert row["map_violation_rate"] < 0.15
        # The lax surveillance slice finds a cheaper operating point.
        sv = rows[1]
        assert sv["final_cost"] < sv["initial_cost"] * 1.05


class TestSchedulerVariants:
    def setup_method(self):
        self.policy = RadioPolicy(airtime=0.9, max_mcs=28)
        self.snrs = [35.0, 10.0]

    def test_pf_alpha_zero_equals_round_robin(self):
        pf = ProportionalFairScheduler(mac_efficiency=0.2, alpha=0.0)
        rr = RoundRobinScheduler(mac_efficiency=0.2)
        pf_allocs = pf.allocate(self.policy, self.snrs)
        rr_allocs = rr.allocate(self.policy, self.snrs)
        for a, b in zip(pf_allocs, rr_allocs):
            assert a.airtime_share == pytest.approx(b.airtime_share)
            assert a.goodput_bps == pytest.approx(b.goodput_bps)

    def test_pf_favours_strong_user(self):
        pf = ProportionalFairScheduler(mac_efficiency=0.2, alpha=1.0)
        allocs = pf.allocate(self.policy, self.snrs)
        assert allocs[0].airtime_share > allocs[1].airtime_share

    def test_pf_shares_sum_to_airtime(self):
        pf = ProportionalFairScheduler(mac_efficiency=0.2, alpha=0.7)
        allocs = pf.allocate(self.policy, self.snrs + [20.0])
        assert sum(a.airtime_share for a in allocs) == pytest.approx(0.9)

    def test_pf_total_throughput_beats_rr(self):
        """Rate-weighted shares raise aggregate goodput."""
        pf = ProportionalFairScheduler(mac_efficiency=0.2, alpha=1.0)
        rr = RoundRobinScheduler(mac_efficiency=0.2)
        pf_total = sum(a.goodput_bps for a in pf.allocate(self.policy, self.snrs))
        rr_total = sum(a.goodput_bps for a in rr.allocate(self.policy, self.snrs))
        assert pf_total > rr_total

    def test_equal_rate_equalises_goodput(self):
        er = EqualRateScheduler(mac_efficiency=0.2)
        allocs = er.allocate(self.policy, self.snrs)
        assert allocs[0].goodput_bps == pytest.approx(
            allocs[1].goodput_bps, rel=1e-6
        )

    def test_equal_rate_gives_weak_user_more_airtime(self):
        er = EqualRateScheduler(mac_efficiency=0.2)
        allocs = er.allocate(self.policy, self.snrs)
        assert allocs[1].airtime_share > allocs[0].airtime_share

    def test_pf_empty_users(self):
        pf = ProportionalFairScheduler(mac_efficiency=0.2)
        assert pf.allocate(self.policy, []) == []

    def test_pf_alpha_validation(self):
        with pytest.raises(ValueError):
            ProportionalFairScheduler(alpha=-1.0)
