"""Tests for the fault-injection subsystem (plan, injector, runtime).

Layer-level behaviour: spec validation, deterministic firing, sensor
corruption in the testbed, bus loss/delay, and the GP fault hook's
transient/persistent semantics.  End-to-end chaos runs live in
``test_chaos.py``; the degradation paths the faults exercise are
covered in ``test_robustness.py``.
"""

import numpy as np
import pytest

from repro.core.numerics import MAX_JITTER_RETRIES
from repro.faults import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedWorkerCrash,
    install,
    make_injector,
    uninstall,
    use,
)
from repro.oran.bus import MessageBus
from repro.testbed.config import ControlPolicy, TestbedConfig
from repro.testbed.scenarios import static_scenario


@pytest.fixture(autouse=True)
def _fault_free():
    """Every test starts and ends with no plan installed."""
    uninstall()
    yield
    uninstall()


# -- plan validation and serialisation -----------------------------------


def test_spec_rejects_unknown_kind_and_mode():
    with pytest.raises(ValueError, match="kind"):
        FaultSpec(kind="cosmic", mode="ray", at=(0,))
    with pytest.raises(ValueError, match="mode"):
        FaultSpec(kind="sensor", mode="crash", at=(0,))


def test_spec_must_be_able_to_fire():
    with pytest.raises(ValueError, match="never fires"):
        FaultSpec(kind="sensor", mode="nan")


def test_spec_rejects_bad_sensor_target():
    with pytest.raises(ValueError, match="sensor target"):
        FaultSpec(kind="sensor", mode="nan", target="gps", at=(0,))


def test_plan_json_round_trip(tmp_path):
    plan = FaultPlan(
        specs=(
            FaultSpec(kind="sensor", mode="dropout", probability=0.1),
            FaultSpec(kind="worker", mode="crash", at=(0, 3), max_events=1),
        ),
        seed=99,
    )
    path = plan.to_json(tmp_path / "plan.json")
    assert FaultPlan.from_json(path) == plan


def test_plan_rejects_unknown_fields():
    with pytest.raises(ValueError, match="unknown fault-plan field"):
        FaultPlan.from_dict({"seed": 0, "chaos": []})
    with pytest.raises(ValueError, match="unknown fault-spec field"):
        FaultPlan.from_dict(
            {"faults": [{"kind": "sensor", "mode": "nan", "when": 3}]}
        )


def test_for_kind_filters_in_order():
    plan = FaultPlan(specs=(
        FaultSpec(kind="bus", mode="loss", probability=0.5),
        FaultSpec(kind="sensor", mode="nan", at=(1,)),
        FaultSpec(kind="bus", mode="delay", at=(2,)),
    ))
    assert [s.mode for s in plan.for_kind("bus")] == ["loss", "delay"]
    assert plan.for_kind("worker") == ()


# -- runtime: install / use / make_injector ------------------------------


def test_make_injector_returns_none_when_fault_free():
    assert make_injector("sensor") is None
    install(FaultPlan(specs=(FaultSpec(kind="bus", mode="loss", at=(0,)),)))
    assert make_injector("sensor") is None  # no sensor specs in the plan
    assert make_injector("bus") is not None


def test_use_restores_previous_plan():
    outer = FaultPlan(specs=(FaultSpec(kind="bus", mode="loss", at=(0,)),))
    inner = FaultPlan(specs=(FaultSpec(kind="sensor", mode="nan", at=(0,)),))
    install(outer)
    with use(inner):
        assert make_injector("sensor") is not None
    assert make_injector("sensor") is None
    assert make_injector("bus") is not None


def test_injector_streams_are_deterministic():
    plan = FaultPlan(
        specs=(FaultSpec(kind="sensor", mode="dropout", probability=0.3),),
        seed=7,
    )

    def draw_firings():
        install(plan, seed_path=(4, 2))
        injector = make_injector("sensor")
        return [
            injector.corrupt_reading("server_power", 100.0) == 0.0
            for _ in range(50)
        ]

    first, second = draw_firings(), draw_firings()
    assert first == second
    assert any(first)
    # A different seed path (another sweep cell) gives a different stream.
    install(plan, seed_path=(4, 3))
    other = make_injector("sensor")
    third = [
        other.corrupt_reading("server_power", 100.0) == 0.0
        for _ in range(50)
    ]
    assert third != first


# -- firing decisions ----------------------------------------------------


def test_at_indices_fire_exactly_and_max_events_caps():
    spec = FaultSpec(kind="sensor", mode="nan", target="delay", at=(1, 3))
    injector = FaultInjector([spec], rng=0, kind="sensor")
    out = [injector.corrupt_reading("delay", 1.0) for _ in range(5)]
    assert [np.isnan(v) for v in out] == [False, True, False, True, False]
    assert injector.counts == {"sensor.nan": 2}

    capped = FaultInjector(
        [FaultSpec(kind="sensor", mode="nan", target="delay", at=(0, 1, 2),
                   max_events=1)],
        rng=0, kind="sensor",
    )
    fired = [np.isnan(capped.corrupt_reading("delay", 1.0)) for _ in range(3)]
    assert fired == [True, False, False]
    assert capped.fired_total == 1


def test_sensor_modes_and_empty_target_matches_power_only():
    injector = FaultInjector(
        [FaultSpec(kind="sensor", mode="spike", probability=1.0,
                   magnitude=8.0)],
        rng=0, kind="sensor",
    )
    assert injector.corrupt_reading("server_power", 10.0) == 80.0
    assert injector.corrupt_reading("bs_power", 5.0) == 40.0
    # '' scopes to the power meter; delay and mAP pass through untouched.
    assert injector.corrupt_reading("delay", 0.2) == 0.2
    assert injector.corrupt_reading("map", 0.6) == 0.6


# -- GP hook semantics ---------------------------------------------------


def test_gp_hook_transient_fails_only_bare_attempt():
    injector = FaultInjector(
        [FaultSpec(kind="gp", mode="transient", at=(0,))], rng=0, kind="gp",
    )
    with pytest.raises(np.linalg.LinAlgError):
        injector.gp_hook("refactorize", 0)
    # Jittered retries of the same event sail through: the ladder recovers.
    for attempt in range(1, MAX_JITTER_RETRIES + 1):
        injector.gp_hook("refactorize", attempt)
    # And the next factorisation event is clean.
    injector.gp_hook("refactorize", 0)


def test_gp_hook_persistent_fails_one_full_ladder_then_clears():
    injector = FaultInjector(
        [FaultSpec(kind="gp", mode="persistent", at=(0,))], rng=0, kind="gp",
    )
    for attempt in range(MAX_JITTER_RETRIES + 1):
        with pytest.raises(np.linalg.LinAlgError):
            injector.gp_hook("refactorize", attempt)
    # The budget is spent: the recovery refit (a fresh event) succeeds.
    injector.gp_hook("refactorize", 0)


def test_gp_hook_persistent_at_rank1_covers_the_fallback_refactorize():
    injector = FaultInjector(
        [FaultSpec(kind="gp", mode="persistent", at=(0,))], rng=0, kind="gp",
    )
    with pytest.raises(np.linalg.LinAlgError):
        injector.gp_hook("rank1", 0)
    # The failed rank-1 chains into a full refactorize; every attempt of
    # that ladder must also fail for the fault to be 'persistent'.
    for attempt in range(MAX_JITTER_RETRIES + 1):
        with pytest.raises(np.linalg.LinAlgError):
            injector.gp_hook("refactorize", attempt)
    injector.gp_hook("refactorize", 0)


# -- worker decisions ----------------------------------------------------


def test_worker_faults_only_fire_on_first_attempt():
    injector = FaultInjector(
        [FaultSpec(kind="worker", mode="crash", at=(2,))], rng=0, kind="worker",
    )
    assert injector.worker_decision(0, attempt=0) is None
    spec = injector.worker_decision(2, attempt=0)
    assert spec is not None and spec.mode == "crash"
    assert injector.worker_decision(2, attempt=1) is None


# -- sensor faults through the testbed environment -----------------------


def test_environment_injects_sensor_faults_only_when_noisy():
    plan = FaultPlan(specs=(
        FaultSpec(kind="sensor", mode="nan", target="server_power",
                  probability=1.0),
    ))
    with use(plan):
        env = static_scenario(mean_snr_db=35.0, rng=0,
                              config=TestbedConfig(n_levels=3))
        policy = ControlPolicy.max_resources()
        clean = env.evaluate(policy, noisy=False)
        assert np.isfinite(clean.server_power_w)
        noisy = env.evaluate(policy, noisy=True)
        assert np.isnan(noisy.server_power_w)
        assert np.isfinite(noisy.bs_power_w)  # untargeted reading intact


def test_environment_is_bit_identical_without_a_plan():
    def run(plan):
        if plan is not None:
            install(plan)
        else:
            uninstall()
        env = static_scenario(mean_snr_db=35.0, rng=0,
                              config=TestbedConfig(n_levels=3))
        obs = env.step(ControlPolicy.max_resources())
        return (obs.delay_s, obs.map_score, obs.server_power_w, obs.bs_power_w)

    # A plan with no sensor specs must not shift the KPI noise streams.
    bus_only = FaultPlan(specs=(FaultSpec(kind="bus", mode="loss", at=(0,)),))
    assert run(None) == run(bus_only)


# -- bus faults ----------------------------------------------------------


def test_bus_loss_drops_messages_deterministically():
    plan = FaultPlan(specs=(
        FaultSpec(kind="bus", mode="loss", target="e2.control", at=(1,)),
    ))
    with use(plan):
        bus = MessageBus()
        seen = []
        bus.subscribe("e2.control", seen.append)
        assert bus.publish("e2.control", "m0") == 1
        assert bus.publish("e2.control", "m1") == 0  # dropped
        assert bus.publish("e2.control", "m2") == 1
        assert seen == ["m0", "m2"]
        assert bus.history("e2.control") == ["m0", "m2"]
        # Untargeted topics are untouched.
        assert bus.publish("o1", "x") == 0 and bus.history("o1") == ["x"]


def test_bus_delay_reorders_but_eventually_delivers():
    plan = FaultPlan(specs=(
        FaultSpec(kind="bus", mode="delay", target="a1", at=(0,),
                  magnitude=2.0),
    ))
    with use(plan):
        bus = MessageBus()
        seen = []
        bus.subscribe("a1", seen.append)
        assert bus.publish("a1", "held") == 0     # held for 2 publishes
        assert bus.publish("a1", "m1") == 1
        bus.publish("a1", "m2")                   # releases 'held' first
        assert seen == ["m1", "held", "m2"]
