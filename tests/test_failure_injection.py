"""Failure-injection tests: the paper's "Practical Issues" claims.

Section 5 states that (i) under infeasible constraint settings the safe
set converges to S0, and (ii) EdgeBOL adapts if the operator relaxes
the constraints at runtime.  These tests inject exactly those events —
plus channel collapses — and verify the claimed behaviour.
"""

import numpy as np

from repro.core import EdgeBOL
from repro.ran.channel import SnrTrace
from repro.testbed.config import (
    ControlPolicy,
    CostWeights,
    ServiceConstraints,
    TestbedConfig,
)
from repro.testbed.env import EdgeAIEnvironment
from repro.testbed.scenarios import static_scenario


def drive(env, agent, n_periods):
    logs = {"delay": [], "cost": [], "safe": [], "policy": []}
    for _ in range(n_periods):
        context = env.observe_context()
        policy = agent.select(context)
        observation = env.step(policy)
        cost = agent.observe(context, policy, observation)
        logs["delay"].append(observation.delay_s)
        logs["cost"].append(cost)
        logs["safe"].append(agent.last_safe_set_size)
        logs["policy"].append(policy.to_array())
    return logs


class TestInfeasibleConstraints:
    def test_safe_set_collapses_to_s0(self):
        """Impossible thresholds: |S_t| stays 1 and the agent holds S0."""
        testbed = TestbedConfig(n_levels=5)
        env = static_scenario(mean_snr_db=35.0, rng=0, config=testbed)
        agent = EdgeBOL(
            testbed.control_grid(),
            ServiceConstraints(d_max_s=0.05, rho_min=0.9),  # infeasible
            CostWeights(1.0, 1.0),
        )
        logs = drive(env, agent, 25)
        assert max(logs["safe"]) == 1
        for policy in logs["policy"]:
            np.testing.assert_allclose(policy, [1, 1, 1, 1])

    def test_relaxing_constraints_recovers(self):
        """The operator relaxes the thresholds at runtime; the safe set
        re-opens and the agent starts saving energy (the paper's
        explicit robustness claim)."""
        testbed = TestbedConfig(n_levels=7)
        env = static_scenario(mean_snr_db=35.0, rng=1, config=testbed)
        agent = EdgeBOL(
            testbed.control_grid(),
            ServiceConstraints(d_max_s=0.05, rho_min=0.9),
            CostWeights(1.0, 1.0),
        )
        stuck = drive(env, agent, 20)
        assert max(stuck["safe"]) == 1
        agent.set_constraints(ServiceConstraints(d_max_s=0.5, rho_min=0.4))
        recovered = drive(env, agent, 60)
        assert recovered["safe"][-1] > 5
        assert np.mean(recovered["cost"][-15:]) < np.mean(stuck["cost"]) * 0.95


class TestChannelCollapse:
    def make_env(self, testbed):
        """SNR collapses from 35 dB to 2 dB mid-run, then recovers."""
        trace = SnrTrace([35.0] * 40 + [2.0] * 30 + [35.0] * 40)
        return EdgeAIEnvironment([trace], config=testbed, rng=0)

    def test_agent_survives_outage_and_recovers(self):
        testbed = TestbedConfig(n_levels=7)
        env = self.make_env(testbed)
        agent = EdgeBOL(
            testbed.control_grid(),
            ServiceConstraints(d_max_s=0.4, rho_min=0.5),
            CostWeights(1.0, 1.0),
        )
        logs = drive(env, agent, 108)
        # During the outage (periods ~40-70) delays blow past the bound
        # even at S0 — no agent can fix physics — but the learner must
        # keep producing decisions and never crash.
        assert len(logs["cost"]) == 108
        assert np.all(np.isfinite(logs["cost"]))
        # After recovery the last periods are feasible again.
        tail = logs["delay"][-15:]
        assert np.mean([d <= 0.4 for d in tail]) > 0.8

    def test_knowledge_transfer_across_outage(self):
        """Good-channel knowledge survives the outage: post-recovery
        cost quickly returns to the pre-outage level."""
        testbed = TestbedConfig(n_levels=7)
        env = self.make_env(testbed)
        agent = EdgeBOL(
            testbed.control_grid(),
            ServiceConstraints(d_max_s=0.4, rho_min=0.5),
            CostWeights(1.0, 1.0),
        )
        logs = drive(env, agent, 108)
        pre_outage = np.mean(logs["cost"][25:39])
        post_recovery = np.mean(logs["cost"][-10:])
        assert post_recovery <= pre_outage * 1.15


class TestDegenerateControls:
    def test_zero_airtime_observation_handled(self):
        """A forced dead allocation produces an inf delay that the
        agent clips and learns from rather than crashing."""
        testbed = TestbedConfig(n_levels=5, min_airtime=0.0)
        env = static_scenario(mean_snr_db=35.0, rng=2, config=testbed)
        agent = EdgeBOL(
            testbed.control_grid(),
            ServiceConstraints(0.4, 0.5),
            CostWeights(1.0, 1.0),
        )
        context = env.observe_context()
        dead = ControlPolicy(1.0, 0.0, 1.0, 1.0)
        observation = env.step(dead)
        assert observation.delay_s == float("inf")
        agent.observe(context, dead, observation)
        assert agent.n_observations == 1
        # The clipped delay entered the GP as a finite "very bad" value.
        assert np.isfinite(agent.gps[1].targets).all()

    def test_learning_continues_after_bad_observation(self):
        testbed = TestbedConfig(n_levels=5, min_airtime=0.0)
        env = static_scenario(mean_snr_db=35.0, rng=3, config=testbed)
        agent = EdgeBOL(
            testbed.control_grid(),
            ServiceConstraints(0.4, 0.5),
            CostWeights(1.0, 1.0),
        )
        context = env.observe_context()
        dead = ControlPolicy(1.0, 0.0, 1.0, 1.0)
        agent.observe(context, dead, env.step(dead))
        logs = drive(env, agent, 20)
        assert np.all(np.isfinite(logs["cost"]))
        # The dead corner is never *selected* (it is not certified safe).
        for policy in logs["policy"]:
            assert policy[1] > 0.0
