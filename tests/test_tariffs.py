"""Tests for energy tariffs and the tariff-tracking experiment."""

import numpy as np
import pytest

from repro.experiments.tariff import (
    TariffSetting,
    band_costs,
    default_tariff,
    run_tariff_tracking,
)
from repro.testbed.tariffs import DayNightTariff, FlatTariff, SolarTariff


class TestFlatTariff:
    def test_constant(self):
        tariff = FlatTariff(1.0, 4.0)
        assert tariff.weights_at(0) == tariff.weights_at(1000)
        assert tariff.weights_at(5).delta2 == 4.0

    def test_changes_only_at_start(self):
        tariff = FlatTariff()
        assert tariff.changes_at(0)
        assert not tariff.changes_at(7)


class TestDayNightTariff:
    def test_band_structure(self):
        tariff = DayNightTariff(periods_per_day=10, day_fraction=0.6)
        weights = [tariff.weights_at(t) for t in range(10)]
        assert all(w == tariff.day_weights for w in weights[:6])
        assert all(w == tariff.night_weights for w in weights[6:])

    def test_wraps_daily(self):
        tariff = DayNightTariff(periods_per_day=10)
        assert tariff.weights_at(3) == tariff.weights_at(13)

    def test_changes_detected(self):
        tariff = DayNightTariff(periods_per_day=10, day_fraction=0.5)
        assert tariff.changes_at(5)
        assert not tariff.changes_at(4)

    def test_validation(self):
        with pytest.raises(ValueError):
            DayNightTariff(periods_per_day=1)
        with pytest.raises(ValueError):
            DayNightTariff(day_fraction=1.0)


class TestSolarTariff:
    def test_range_and_cycle(self):
        tariff = SolarTariff(periods_per_day=40)
        values = [tariff.weights_at(t).delta2 for t in range(40)]
        assert min(values) == pytest.approx(tariff.delta2_min)
        assert max(values) == pytest.approx(tariff.delta2_max)
        # Midnight expensive, noon cheap.
        assert values[0] > values[20]

    def test_quantisation(self):
        tariff = SolarTariff(periods_per_day=100, n_steps=4)
        values = {tariff.weights_at(t).delta2 for t in range(100)}
        assert len(values) <= 4

    def test_validation(self):
        with pytest.raises(ValueError):
            SolarTariff(delta2_min=5.0, delta2_max=4.0)


class TestTariffTracking:
    def test_run_produces_log(self):
        setting = TariffSetting(n_periods=40, n_levels=5)
        log = run_tariff_tracking(decoupled=True, setting=setting, seed=0)
        assert len(log) == 40
        assert np.all(np.isfinite(log.cost))

    def test_band_costs_cover_both_bands(self):
        setting = TariffSetting(n_periods=60, n_levels=5)
        tariff = default_tariff(setting)
        log = run_tariff_tracking(
            decoupled=False, setting=setting, tariff=tariff, seed=0
        )
        bands = band_costs(log, tariff, setting)
        assert len(bands) == 2
        day = bands[(1.0, 8.0)]
        night = bands[(1.0, 1.0)]
        # Day band prices BS watts 8x -> day costs exceed night costs.
        assert day > night
