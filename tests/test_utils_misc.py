"""Tests for repro.utils.validation, grids and ascii rendering."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.ascii import render_chart, render_histogram, render_table
from repro.utils.grids import cartesian_grid, linear_levels, nearest_grid_index
from repro.utils.validation import (
    check_fraction,
    check_in_range,
    check_non_negative,
    check_positive,
)


class TestValidation:
    def test_positive_accepts(self):
        assert check_positive(2.5, "x") == 2.5

    @pytest.mark.parametrize("bad", [0.0, -1.0, float("nan"), float("inf")])
    def test_positive_rejects(self, bad):
        with pytest.raises(ValueError):
            check_positive(bad, "x")

    def test_non_negative_accepts_zero(self):
        assert check_non_negative(0.0, "x") == 0.0

    def test_non_negative_rejects(self):
        with pytest.raises(ValueError):
            check_non_negative(-0.1, "x")

    def test_in_range(self):
        assert check_in_range(5.0, "x", 0.0, 10.0) == 5.0
        with pytest.raises(ValueError):
            check_in_range(11.0, "x", 0.0, 10.0)

    def test_fraction_bounds(self):
        assert check_fraction(0.0, "x") == 0.0
        assert check_fraction(1.0, "x") == 1.0
        with pytest.raises(ValueError):
            check_fraction(1.01, "x")

    def test_error_message_names_argument(self):
        with pytest.raises(ValueError, match="airtime"):
            check_fraction(2.0, "airtime")


class TestGrids:
    def test_linear_levels(self):
        levels = linear_levels(11, 0.0, 1.0)
        assert levels.size == 11
        assert levels[0] == 0.0 and levels[-1] == 1.0
        assert np.all(np.diff(levels) > 0)

    def test_single_level_is_high(self):
        np.testing.assert_array_equal(linear_levels(1, 0.2, 0.9), [0.9])

    def test_invalid_levels(self):
        with pytest.raises(ValueError):
            linear_levels(0)
        with pytest.raises(ValueError):
            linear_levels(3, 1.0, 0.0)

    def test_cartesian_grid_size(self):
        grid = cartesian_grid(np.arange(3), np.arange(4), np.arange(5))
        assert grid.shape == (60, 3)

    def test_cartesian_grid_order(self):
        grid = cartesian_grid(np.array([0, 1]), np.array([10, 20]))
        np.testing.assert_array_equal(
            grid, [[0, 10], [0, 20], [1, 10], [1, 20]]
        )

    def test_cartesian_grid_rejects_empty_axis(self):
        with pytest.raises(ValueError):
            cartesian_grid(np.arange(2), np.array([]))

    def test_nearest_index(self):
        grid = cartesian_grid(np.linspace(0, 1, 5), np.linspace(0, 1, 5))
        idx = nearest_grid_index(grid, np.array([0.26, 0.77]))
        np.testing.assert_allclose(grid[idx], [0.25, 0.75])

    def test_nearest_index_shape_mismatch(self):
        with pytest.raises(ValueError):
            nearest_grid_index(np.zeros((4, 2)), np.zeros(3))

    @given(st.integers(2, 8), st.integers(2, 8))
    @settings(max_examples=20, deadline=None)
    def test_property_grid_contains_all_corners(self, n1, n2):
        a1, a2 = linear_levels(n1), linear_levels(n2)
        grid = cartesian_grid(a1, a2)
        rows = {tuple(r) for r in grid}
        for corner in [(a1[0], a2[0]), (a1[0], a2[-1]), (a1[-1], a2[0]),
                       (a1[-1], a2[-1])]:
            assert corner in rows


class TestAsciiRendering:
    def test_table_contains_values(self):
        text = render_table(["a", "b"], [[1, 2.5], ["x", 3.0]])
        assert "2.5" in text and "x" in text
        assert text.count("\n") == 3  # header, separator, 2 rows

    def test_table_row_length_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a"], [[1, 2]])

    def test_chart_renders_series(self):
        text = render_chart({"s": [1.0, 2.0, 3.0]}, title="t")
        assert "t" in text and "s" in text

    def test_chart_multiple_series_distinct_markers(self):
        text = render_chart({"a": [1, 2], "b": [2, 1]})
        assert "* a" in text and "o b" in text

    def test_chart_empty_raises(self):
        with pytest.raises(ValueError):
            render_chart({})

    def test_chart_constant_series(self):
        text = render_chart({"c": [5.0, 5.0, 5.0]})
        assert "c" in text

    def test_histogram(self):
        text = render_histogram([1, 1, 2, 3, 3, 3], bins=3)
        assert "#" in text

    def test_histogram_empty(self):
        assert "no finite" in render_histogram([float("nan")])
