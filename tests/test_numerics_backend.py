"""Tests for the pluggable numerics backend layer and the sparse policy.

Covers the :mod:`repro.core.backend` contract — the NumpyBackend's
bit-identity with the scipy routines it replaced, the backend registry,
:class:`NumericsConfig` construction/validation/environment resolution
and the install/use precedence — plus the deterministic inducing-subset
selection of :mod:`repro.core.sparse` and its conservative-variance
property (the argument that makes sparse mode safe for eq.-8
certification).
"""

import numpy as np
import pytest
from scipy.linalg import cho_solve, cholesky, solve_triangular

from repro.core.backend import (
    ENV_BACKEND,
    ENV_BATCHED,
    ENV_BUDGET,
    ENV_SPARSE,
    ArrayBackend,
    NumericsConfig,
    NumpyBackend,
    active_numerics,
    available_backends,
    get_backend,
    install_numerics,
    numerics_env,
    register_backend,
    uninstall_numerics,
    use_numerics,
)
from repro.core.gp import GaussianProcess
from repro.core.kernels import Matern
from repro.core.sparse import greedy_inducing_indices, make_eviction_policy


@pytest.fixture(autouse=True)
def _no_installed_config():
    """Every test starts and ends with no installed numerics config."""
    uninstall_numerics()
    yield
    uninstall_numerics()


def spd(rng, n):
    a = rng.normal(size=(n, n))
    return a @ a.T + n * np.eye(n)


class TestNumpyBackendOps:
    """The default backend delegates to the exact pre-refactor routines."""

    def test_cholesky_bit_identical_to_scipy(self, rng):
        m = spd(rng, 6)
        for lower in (True, False):
            np.testing.assert_array_equal(
                NumpyBackend().cholesky(m, lower=lower),
                cholesky(m, lower=lower),
            )

    def test_cholesky_batched_loops_leading_axis(self, rng):
        stack = np.stack([spd(rng, 5) for _ in range(3)])
        out = NumpyBackend().cholesky(stack, lower=True)
        assert out.shape == stack.shape
        for got, m in zip(out, stack):
            np.testing.assert_array_equal(got, cholesky(m, lower=True))

    def test_cholesky_raises_linalgerror_on_indefinite(self):
        with pytest.raises(np.linalg.LinAlgError):
            NumpyBackend().cholesky(np.array([[1.0, 2.0], [2.0, 1.0]]))

    def test_solve_triangular_bit_identical(self, rng):
        m = np.tril(spd(rng, 6))
        b = rng.normal(size=(6, 4))
        np.testing.assert_array_equal(
            NumpyBackend().solve_triangular(m, b, lower=True),
            solve_triangular(m, b, lower=True),
        )

    def test_solve_triangular_batched(self, rng):
        mats = np.stack([np.tril(spd(rng, 5)) for _ in range(3)])
        rhs = rng.normal(size=(3, 5, 2))
        out = NumpyBackend().solve_triangular(mats, rhs, lower=True)
        assert out.shape == rhs.shape
        for got, m, b in zip(out, mats, rhs):
            np.testing.assert_array_equal(
                got, solve_triangular(m, b, lower=True)
            )

    def test_cho_solve_bit_identical(self, rng):
        m = spd(rng, 6)
        chol = cholesky(m, lower=True)
        b = rng.normal(size=6)
        np.testing.assert_array_equal(
            NumpyBackend().cho_solve(chol, b, lower=True),
            cho_solve((chol, True), b),
        )

    def test_array_helpers(self, rng):
        bk = NumpyBackend()
        assert bk.xp is np
        assert bk.name == "numpy"
        a, b = rng.normal(size=(3, 4)), rng.normal(size=(4, 2))
        np.testing.assert_array_equal(bk.matmul(a, b), a @ b)
        np.testing.assert_array_equal(
            bk.einsum("ij,jk->ik", a, b), np.einsum("ij,jk->ik", a, b)
        )
        np.testing.assert_array_equal(
            bk.stack([a, a]), np.stack([a, a])
        )
        assert bk.asarray([1, 2]).dtype == float


class TestRegistry:
    def test_default_backend_is_numpy(self):
        backend = get_backend()
        assert isinstance(backend, NumpyBackend)
        # Instances are cached: same object every call.
        assert get_backend("numpy") is backend

    def test_builtin_names_advertised(self):
        names = available_backends()
        assert "numpy" in names
        assert "cupy" in names
        assert "torch" in names

    def test_unknown_name_raises_keyerror(self):
        with pytest.raises(KeyError, match="numpy"):
            get_backend("fortran77")

    def test_register_custom_backend(self):
        calls = []

        class Custom(NumpyBackend):
            name = "custom-test"

        def factory():
            calls.append(1)
            return Custom()

        register_backend("custom-test", factory)
        assert "custom-test" in available_backends()
        first = get_backend("custom-test")
        assert isinstance(first, Custom)
        assert get_backend("custom-test") is first
        assert len(calls) == 1  # lazy + cached

    def test_register_empty_name_rejected(self):
        with pytest.raises(ValueError):
            register_backend("", NumpyBackend)

    @pytest.mark.parametrize("name", ["cupy", "torch"])
    def test_unavailable_accelerator_backends_raise_actionably(self, name):
        # Whether the library is absent (placeholder backend) or present
        # (factory refuses: not implemented), use must raise RuntimeError
        # rather than fail deep inside a solve.
        try:
            backend = get_backend(name)
        except RuntimeError:
            return
        assert isinstance(backend, ArrayBackend)
        with pytest.raises(RuntimeError, match=name):
            backend.matmul(np.eye(2), np.eye(2))


class TestNumericsConfig:
    def test_defaults_are_dense_numpy(self):
        config = NumericsConfig()
        assert config.backend == "numpy"
        assert not config.batched_heads and not config.sparse
        assert config.mode == "dense"

    @pytest.mark.parametrize("batched,sparse,mode", [
        (False, False, "dense"),
        (True, False, "batched"),
        (False, True, "sparse"),
        (True, True, "sparse+batched"),
    ])
    def test_mode_labels(self, batched, sparse, mode):
        assert NumericsConfig(
            batched_heads=batched, sparse=sparse
        ).mode == mode

    @pytest.mark.parametrize("label", [
        "dense", "batched", "sparse", "sparse-batched", "sparse+batched",
    ])
    def test_from_mode_round_trips(self, label):
        config = NumericsConfig.from_mode(label)
        assert config.mode == label.replace("-", "+")

    def test_from_mode_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown numerics mode"):
            NumericsConfig.from_mode("lightspeed")

    def test_from_mode_overrides(self):
        config = NumericsConfig.from_mode("sparse", sparse_budget=32)
        assert config.sparse and config.sparse_budget == 32

    def test_validation(self):
        with pytest.raises(ValueError):
            NumericsConfig(sparse_budget=0)
        with pytest.raises(ValueError):
            NumericsConfig(sparse_block=0)
        with pytest.raises(ValueError):
            NumericsConfig(recent_fraction=1.5)
        with pytest.raises(ValueError):
            NumericsConfig(variance_inflation=0.5)

    def test_from_env_parses_variables(self):
        environ = {
            ENV_BACKEND: "numpy",
            ENV_BATCHED: "true",
            ENV_SPARSE: "0",
            ENV_BUDGET: "77",
        }
        config = NumericsConfig.from_env(environ)
        assert config.batched_heads and not config.sparse
        assert config.sparse_budget == 77

    def test_from_env_bad_budget_raises(self):
        with pytest.raises(ValueError, match=ENV_BUDGET):
            NumericsConfig.from_env({ENV_BUDGET: "many"})

    def test_env_vars_round_trip(self):
        config = NumericsConfig(batched_heads=True, sparse=True,
                                sparse_budget=128)
        assert NumericsConfig.from_env(config.env_vars()) == config

    def test_install_overrides_environment(self, monkeypatch):
        monkeypatch.setenv(ENV_BATCHED, "1")
        assert active_numerics().batched_heads
        install_numerics(NumericsConfig())
        assert not active_numerics().batched_heads
        uninstall_numerics()
        assert active_numerics().batched_heads

    def test_install_rejects_non_config(self):
        with pytest.raises(TypeError):
            install_numerics({"backend": "numpy"})

    def test_use_numerics_restores_previous(self):
        outer = NumericsConfig(sparse=True)
        install_numerics(outer)
        with use_numerics(NumericsConfig(batched_heads=True)) as inner:
            assert active_numerics() is inner
        assert active_numerics() is outer

    def test_numerics_env_resolves_and_exports(self):
        environ = {ENV_BUDGET: "99"}
        config = numerics_env("sparse-batched", environ=environ)
        assert config.mode == "sparse+batched"
        assert config.sparse_budget == 99  # env value kept
        assert environ[ENV_SPARSE] == "1"
        assert environ[ENV_BATCHED] == "1"

    def test_numerics_env_flag_overrides_win(self):
        environ = {ENV_SPARSE: "1", ENV_BUDGET: "99"}
        config = numerics_env("dense", sparse_budget=11, environ=environ)
        assert config.mode == "dense"
        assert config.sparse_budget == 11
        assert environ[ENV_SPARSE] == "0"
        assert environ[ENV_BUDGET] == "11"

    def test_numerics_env_without_flags_keeps_environment(self):
        environ = {ENV_BATCHED: "yes"}
        config = numerics_env(environ=environ)
        assert config.batched_heads
        assert environ[ENV_BATCHED] == "1"  # normalised back


class TestGreedyInducingSelection:
    def test_selects_all_when_budget_covers(self, rng):
        x = rng.random((5, 3))
        np.testing.assert_array_equal(
            greedy_inducing_indices(x, 8), np.arange(5)
        )

    def test_deterministic_sorted_unique(self, rng):
        x = rng.random((40, 7))
        first = greedy_inducing_indices(x, 12)
        second = greedy_inducing_indices(x, 12)
        np.testing.assert_array_equal(first, second)
        assert first.size == 12
        assert np.all(np.diff(first) > 0)  # sorted, unique

    def test_seeds_from_most_recent_row(self, rng):
        x = rng.random((10, 2))
        assert 9 in greedy_inducing_indices(x, 3)

    def test_farthest_point_behaviour(self):
        # Seed is the last row (value 2); rows 0 and 4 are the extremes.
        x = np.array([[0.0], [0.9], [1.1], [1.9], [4.0], [2.0]])
        np.testing.assert_array_equal(
            greedy_inducing_indices(x, 3), [0, 4, 5]
        )

    def test_tie_breaks_to_lowest_index(self):
        # Rows 0 and 1 are equidistant from the seed (row 2).
        x = np.array([[0.0], [4.0], [2.0]])
        np.testing.assert_array_equal(
            greedy_inducing_indices(x, 2), [0, 2]
        )

    def test_preselected_rows_forced(self, rng):
        x = rng.random((30, 4))
        keep = greedy_inducing_indices(x, 10, preselected=[3, 17])
        assert {3, 17} <= set(keep.tolist())

    def test_lengthscales_change_the_metric(self):
        # Dimension 0 dominates unscaled; huge lengthscale mutes it so
        # dimension 1 decides instead.
        x = np.array([[0.0, 0.0], [10.0, 0.1], [0.0, 1.0], [0.1, 0.0]])
        unscaled = greedy_inducing_indices(x, 2, preselected=[0])
        muted = greedy_inducing_indices(
            x, 2, lengthscales=[1000.0, 1.0], preselected=[0]
        )
        assert 1 in unscaled
        assert 2 in muted

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            greedy_inducing_indices(rng.random(5), 2)  # 1-D
        with pytest.raises(ValueError):
            greedy_inducing_indices(rng.random((5, 2)), 0)
        with pytest.raises(ValueError):
            greedy_inducing_indices(
                rng.random((5, 2)), 2, preselected=[0, 1, 2]
            )


class TestEvictionPolicy:
    def test_under_budget_keeps_everything(self, rng):
        policy = make_eviction_policy()
        np.testing.assert_array_equal(
            policy(rng.random((6, 3)), rng.normal(size=6), 10),
            np.arange(6),
        )

    def test_over_budget_trims_to_budget_with_recent_block(self, rng):
        policy = make_eviction_policy(recent_fraction=0.25)
        x = rng.random((50, 3))
        keep = policy(x, rng.normal(size=50), 20)
        assert keep.size == 20
        # The newest round(20 * 0.25) = 5 rows are always retained.
        assert set(range(45, 50)) <= set(keep.tolist())

    def test_deterministic(self, rng):
        policy = make_eviction_policy(lengthscales=np.full(3, 0.8))
        x, y = rng.random((40, 3)), rng.normal(size=40)
        np.testing.assert_array_equal(policy(x, y, 16), policy(x, y, 16))

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            make_eviction_policy(recent_fraction=-0.1)
        policy = make_eviction_policy()
        with pytest.raises(ValueError):
            policy(rng.random((5, 2)), rng.normal(size=5), 0)


class TestSubsetVarianceConservatism:
    def test_subset_posterior_variance_upper_bounds_full(self, rng):
        """The property that keeps eq.-8 valid in sparse mode.

        Conditioning on more observations never increases posterior
        variance, so a subset-of-data GP reports variances >= the
        full-data GP's at every query point.
        """
        d = 5
        kernel = Matern(lengthscales=np.full(d, 0.7), output_scale=2.0)
        x = rng.random((60, d))
        y = rng.normal(size=60)
        query = rng.random((25, d))

        full = GaussianProcess(kernel, noise_variance=0.05)
        full.fit(x, y)
        _, full_var = full.predict(query)

        keep = greedy_inducing_indices(x, 20, lengthscales=kernel.lengthscales)
        subset = GaussianProcess(kernel, noise_variance=0.05)
        subset.fit(x[keep], y[keep])
        _, subset_var = subset.predict(query)

        assert np.all(subset_var >= full_var - 1e-10)
