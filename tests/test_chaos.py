"""Chaos end-to-end: the committed fault plan against the full stack.

``examples/faults/chaos_plan.json`` is the documented chaos scenario
(``docs/ROBUSTNESS.md``): >=5% power-meter dropout, an occasional NaN
delay sample, one forced persistent Cholesky failure and one worker
crash.  The convergence experiment must ride through it with zero
uncaught exceptions, visible quarantine/retry counters, bit-identical
results for a fixed seed, and a converged cost close to the fault-free
baseline.
"""

from pathlib import Path

import numpy as np
import pytest

import repro.experiments  # noqa: F401  (populate the spec registry)
from repro.cli import main
from repro.experiments import spec as spec_registry
from repro.experiments.parallel import run_sweep
from repro.faults import FaultPlan, uninstall
from repro.telemetry import runtime as telemetry

PLAN_PATH = (
    Path(__file__).resolve().parent.parent
    / "examples" / "faults" / "chaos_plan.json"
)


@pytest.fixture(autouse=True)
def _fault_free():
    """Every test starts and ends with no plan installed."""
    uninstall()
    yield
    uninstall()


@pytest.fixture(scope="module")
def chaos_plan() -> FaultPlan:
    return FaultPlan.from_json(PLAN_PATH)


def _convergence():
    spec = spec_registry.get("convergence")
    params = spec.resolve({
        "delta2": (1.0,), "periods": 60, "repetitions": 2, "levels": 5,
    })
    return spec, params  # 2 cells: the plan crashes cell 0 once


def _tail_costs(result, window: int = 15) -> list[float]:
    """Mean cost of the final ``window`` periods, per cell."""
    tails = []
    for cell in result.cells:
        costs = [row["cost"] for row in sorted(cell.rows, key=lambda r: r["t"])]
        tails.append(float(np.mean(costs[-window:])))
    return tails


def test_plan_file_documents_the_advertised_faults(chaos_plan):
    kinds = {(s.kind, s.mode) for s in chaos_plan.specs}
    assert ("sensor", "dropout") in kinds
    assert ("gp", "persistent") in kinds
    assert ("worker", "crash") in kinds
    dropout = next(s for s in chaos_plan.specs if s.mode == "dropout")
    assert dropout.probability >= 0.05


def test_convergence_survives_the_chaos_plan_end_to_end(chaos_plan):
    spec, params = _convergence()
    telemetry.reset_metrics()
    telemetry.enable()
    try:
        result = run_sweep(spec, params, seed=11, jobs=2, out=None,
                           fault_plan=chaos_plan, retry_backoff_s=0.0)
        counters = telemetry.metrics_snapshot().get("counters", {})
    finally:
        telemetry.disable()
        telemetry.reset_metrics()

    # Zero uncaught exceptions: every cell completed, none quarantined.
    assert result.quarantined == []
    assert all(cell.rows for cell in result.cells)
    # The injected worker crash was absorbed by the retry ladder.
    assert result.retries >= 1
    assert counters.get("sweep.cell.retries", 0) >= 1
    # The sensor dropouts hit and were quarantined, not fitted.
    assert counters.get("faults.sensor.dropout", 0) > 0
    assert counters.get("edgebol.quarantined", 0) > 0
    # The forced Cholesky failure tripped the degradation ladder.
    assert counters.get("faults.gp.persistent", 0) >= 1
    assert counters.get("edgebol.surrogate_failures", 0) >= 1


def test_chaos_runs_are_bit_identical_for_a_seed(chaos_plan):
    spec, params = _convergence()
    first = run_sweep(spec, params, seed=11, jobs=2, out=None,
                      fault_plan=chaos_plan, retry_backoff_s=0.0)
    second = run_sweep(spec, params, seed=11, jobs=2, out=None,
                       fault_plan=chaos_plan, retry_backoff_s=0.0)
    assert [c.rows for c in first.cells] == [c.rows for c in second.cells]


def test_chaos_cost_stays_near_the_fault_free_baseline(chaos_plan):
    spec, params = _convergence()
    baseline = run_sweep(spec, params, seed=11, jobs=1, out=None)
    chaotic = run_sweep(spec, params, seed=11, jobs=2, out=None,
                        fault_plan=chaos_plan, retry_backoff_s=0.0)
    base = float(np.mean(_tail_costs(baseline)))
    chaos = float(np.mean(_tail_costs(chaotic)))
    assert abs(chaos - base) <= 0.15 * abs(base), (
        f"chaos tail cost {chaos:.1f} vs fault-free {base:.1f}"
    )


def test_cli_accepts_a_fault_plan(tmp_path, capsys):
    status = main([
        "convergence", "--delta2", "1", "--periods", "3",
        "--repetitions", "2", "--levels", "3",
        "--faults", str(PLAN_PATH), "--out", str(tmp_path),
    ])
    assert status == 0
    assert "convergence" in capsys.readouterr().out


def test_cli_rejects_a_malformed_fault_plan(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text('{"faults": [{"kind": "cosmic", "mode": "ray"}]}')
    with pytest.raises(SystemExit, match="cannot load fault plan"):
        main(["convergence", "--faults", str(bad), "--out", str(tmp_path)])
