"""Tests for repro.ran.phy (link-adaptation tables)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ran import phy


class TestSnrToCqi:
    def test_range_clipping(self):
        assert phy.snr_to_cqi(-100.0) == 1
        assert phy.snr_to_cqi(100.0) == 15

    def test_monotone(self):
        cqis = [phy.snr_to_cqi(snr) for snr in np.linspace(-10, 40, 101)]
        assert all(b >= a for a, b in zip(cqis, cqis[1:]))

    def test_good_channel_reaches_top_cqi(self):
        assert phy.snr_to_cqi(35.0) == 15

    def test_known_midpoint(self):
        # CQI ~= 0.5 * SNR + 4.5 -> SNR 10 dB gives CQI 9.
        assert phy.snr_to_cqi(10.0) == 9


class TestCqiToMcs:
    def test_bounds(self):
        with pytest.raises(ValueError):
            phy.cqi_to_max_mcs(0)
        with pytest.raises(ValueError):
            phy.cqi_to_max_mcs(16)

    def test_monotone_in_cqi(self):
        mcs = [phy.cqi_to_max_mcs(c) for c in range(1, 16)]
        assert all(b >= a for a, b in zip(mcs, mcs[1:]))

    def test_efficiency_never_exceeds_cqi(self):
        for cqi in range(1, 16):
            mcs = phy.cqi_to_max_mcs(cqi)
            cqi_eff = phy._CQI_EFFICIENCY[cqi - 1]
            assert phy.mcs_efficiency(mcs) <= cqi_eff + 1e-9


class TestMcsTables:
    def test_efficiency_monotone(self):
        effs = [phy.mcs_efficiency(m) for m in range(phy.MAX_MCS + 1)]
        assert all(b > a for a, b in zip(effs, effs[1:]))

    def test_efficiency_span(self):
        assert phy.mcs_efficiency(0) == pytest.approx(0.152, abs=0.01)
        assert phy.mcs_efficiency(phy.MAX_MCS) == pytest.approx(5.55, abs=0.05)

    def test_modulation_order_ladder(self):
        orders = [phy.mcs_modulation_order(m) for m in range(phy.MAX_MCS + 1)]
        assert orders[0] == 2 and orders[-1] == 6
        assert all(b >= a for a, b in zip(orders, orders[1:]))

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            phy.mcs_efficiency(-1)
        with pytest.raises(ValueError):
            phy.mcs_efficiency(phy.MAX_MCS + 1)


class TestMcsFromFraction:
    def test_endpoints(self):
        assert phy.mcs_from_fraction(0.0) == 0
        assert phy.mcs_from_fraction(1.0) == phy.MAX_MCS

    def test_invalid(self):
        with pytest.raises(ValueError):
            phy.mcs_from_fraction(1.5)

    @given(st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=50, deadline=None)
    def test_property_in_range(self, fraction):
        mcs = phy.mcs_from_fraction(fraction)
        assert 0 <= mcs <= phy.MAX_MCS


class TestUplinkCapacity:
    def test_scales_linearly_with_airtime(self):
        full = phy.uplink_capacity_bps(20, 1.0)
        half = phy.uplink_capacity_bps(20, 0.5)
        assert half == pytest.approx(full / 2)

    def test_scales_with_bandwidth(self):
        r20 = phy.uplink_capacity_bps(20, 1.0, bandwidth_mhz=20.0)
        r10 = phy.uplink_capacity_bps(20, 1.0, bandwidth_mhz=10.0)
        assert r20 == pytest.approx(2 * r10)

    def test_nominal_peak_rate_about_75mbps(self):
        # 64QAM r~0.93 at 100 PRB: ~74 Mb/s nominal on 20 MHz.
        peak = phy.uplink_capacity_bps(phy.MAX_MCS, 1.0)
        assert 6.5e7 < peak < 8.5e7

    def test_mac_efficiency_scales(self):
        nominal = phy.uplink_capacity_bps(10, 1.0)
        effective = phy.uplink_capacity_bps(10, 1.0, mac_efficiency=0.2)
        assert effective == pytest.approx(0.2 * nominal)

    def test_zero_airtime_zero_rate(self):
        assert phy.uplink_capacity_bps(10, 0.0) == 0.0

    def test_invalid_mac_efficiency(self):
        with pytest.raises(ValueError):
            phy.uplink_capacity_bps(10, 1.0, mac_efficiency=0.0)


class TestEffectiveMcs:
    def test_policy_caps(self):
        assert phy.effective_mcs(5, snr_db=35.0) == 5

    def test_channel_caps(self):
        low_snr_mcs = phy.effective_mcs(phy.MAX_MCS, snr_db=5.0)
        assert low_snr_mcs < phy.MAX_MCS

    def test_good_channel_allows_policy(self):
        assert phy.effective_mcs(27, snr_db=35.0) == 27

    @given(
        st.integers(0, phy.MAX_MCS),
        st.floats(min_value=-10, max_value=45, allow_nan=False),
    )
    @settings(max_examples=100, deadline=None)
    def test_property_never_exceeds_policy(self, policy_mcs, snr):
        assert phy.effective_mcs(policy_mcs, snr) <= policy_mcs
