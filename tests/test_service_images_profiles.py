"""Tests for the synthetic dataset, encoding model and profiles."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.images import (
    BASE_HEIGHT,
    BASE_WIDTH,
    ImageSpec,
    SyntheticCocoDataset,
    encoded_bits,
)
from repro.service.profiles import expected_map, map_observation_std

fractions = st.floats(min_value=0.0, max_value=1.0)


class TestEncodedBits:
    def test_monotone_in_resolution(self):
        sizes = [encoded_bits(r) for r in (0.25, 0.5, 0.75, 1.0)]
        assert all(b > a for a, b in zip(sizes, sizes[1:]))

    def test_full_resolution_magnitude(self):
        """A full 640x480 frame encodes to roughly 2-3 Mb."""
        bits = encoded_bits(1.0)
        assert 1.5e6 < bits < 3.5e6

    def test_overhead_floor(self):
        assert encoded_bits(0.0) == pytest.approx(20_000.0)

    def test_invalid_resolution(self):
        with pytest.raises(ValueError):
            encoded_bits(1.2)

    @given(fractions)
    @settings(max_examples=40, deadline=None)
    def test_property_positive(self, r):
        assert encoded_bits(r) > 0


class TestSyntheticCocoDataset:
    def test_deterministic(self):
        a = SyntheticCocoDataset(rng=0).sample_image()
        b = SyntheticCocoDataset(rng=0).sample_image()
        assert len(a.objects) == len(b.objects)
        assert a.objects[0].bbox == b.objects[0].bbox

    def test_geometry(self):
        image = SyntheticCocoDataset(rng=1).sample_image()
        assert image.width == BASE_WIDTH and image.height == BASE_HEIGHT
        for obj in image.objects:
            x, y, w, h = obj.bbox
            assert 0 <= x and x + w <= BASE_WIDTH + 1e-6
            assert 0 <= y and y + h <= BASE_HEIGHT + 1e-6

    def test_at_least_one_object(self):
        dataset = SyntheticCocoDataset(rng=2, mean_objects=0.1)
        for _ in range(20):
            assert len(dataset.sample_image().objects) >= 1

    def test_mean_object_count(self):
        dataset = SyntheticCocoDataset(rng=3, mean_objects=7.0)
        counts = [len(dataset.sample_image().objects) for _ in range(300)]
        assert 6.0 < np.mean(counts) < 8.0

    def test_size_buckets_present(self):
        dataset = SyntheticCocoDataset(rng=4)
        buckets = {
            obj.size_bucket
            for img in dataset.sample_batch(50)
            for obj in img.objects
        }
        assert buckets == {"small", "medium", "large"}

    def test_class_ids_in_range(self):
        dataset = SyntheticCocoDataset(rng=5, n_classes=12)
        for img in dataset.sample_batch(30):
            for obj in img.objects:
                assert 0 <= obj.class_id < 12

    def test_batch_size(self):
        assert len(SyntheticCocoDataset(rng=6).sample_batch(17)) == 17

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            SyntheticCocoDataset(mean_objects=0.0)
        with pytest.raises(ValueError):
            SyntheticCocoDataset(n_classes=0)

    def test_image_spec_validation(self):
        with pytest.raises(ValueError):
            ImageSpec(width=0, height=10)


class TestProfiles:
    def test_expected_map_full_resolution(self):
        assert expected_map(1.0) == pytest.approx(0.66, abs=0.01)

    def test_expected_map_quarter_resolution(self):
        """Fig. 1: ~0.2 mAP at 25% resolution."""
        assert 0.15 < expected_map(0.25) < 0.3

    def test_monotone(self):
        values = [expected_map(r) for r in np.linspace(0, 1, 21)]
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_bounded(self):
        for r in np.linspace(0, 1, 11):
            assert 0.0 <= expected_map(r) <= 1.0

    def test_delay_saving_precision_tradeoff(self):
        """Paper: 72% delay saving costs 10-50% of precision.

        The mAP drop from 100% to 25% resolution should be substantial
        (more than 40% relative) but not total.
        """
        drop = 1.0 - expected_map(0.25) / expected_map(1.0)
        assert 0.4 < drop < 0.8

    def test_observation_std_shrinks_with_batch(self):
        assert map_observation_std(600) < map_observation_std(150)

    def test_observation_std_invalid(self):
        with pytest.raises(ValueError):
            map_observation_std(0)
