"""Edge-case tests for GP calibration diagnostics.

The calibration helpers sit under both the offline ``calibration_report``
path and the per-round decision traces (``repro.obs``); these tests pin
the numerically delicate corners: zero-variance posteriors, posterior
shape mismatches, the ``expected_coverage`` round trip, and the
streaming :class:`RunningCalibration` accumulator.
"""

import math

import numpy as np
import pytest

from repro.core.diagnostics import (
    RunningCalibration,
    calibration_report,
    expected_coverage,
    interval_coverage,
    standardised_errors,
)
from repro.core.gp import GaussianProcess
from repro.core.kernels import Matern

DIM = 3


def make_gp(noise_variance=0.01):
    kernel = Matern(lengthscales=np.full(DIM, 0.7), output_scale=2.0)
    return GaussianProcess(kernel, noise_variance=noise_variance)


class TestPrecomputedPosterior:
    def test_zero_variance_posterior_is_finite(self):
        """A collapsed posterior must not divide by zero.

        With zero latent variance and (near-)zero observation noise the
        predictive std collapses toward the 1e-12 floor — errors stay
        finite (and huge) instead of inf/NaN.
        """
        gp = make_gp(noise_variance=1e-12)
        x = np.zeros((2, DIM))
        y = np.array([0.5, 0.0])
        posterior = (np.array([0.5, 0.5]), np.zeros(2))
        errors = standardised_errors(gp, x, y, posterior=posterior)
        assert np.isfinite(errors).all()
        assert errors[0] == 0.0
        assert abs(errors[1]) >= 1e5
        # Coverage degenerates gracefully too: the exact point is in,
        # the far point is out.
        assert interval_coverage(gp, x, y, posterior=posterior) == 0.5

    def test_zero_variance_with_noise_uses_noise_floor(self):
        gp = make_gp(noise_variance=0.04)
        x = np.zeros((1, DIM))
        posterior = (np.array([1.0]), np.zeros(1))
        errors = standardised_errors(
            gp, x, np.array([1.2]), posterior=posterior
        )
        np.testing.assert_allclose(errors, [0.2 / 0.2], rtol=1e-12)

    def test_shape_mismatch_error_names_both_sizes(self):
        gp = make_gp()
        x = np.zeros((3, DIM))
        posterior = (np.zeros(2), np.ones(2))
        with pytest.raises(
            ValueError, match=r"posterior moments cover 2 points but got 3"
        ):
            standardised_errors(gp, x, np.zeros(3), posterior=posterior)

    def test_input_target_mismatch(self):
        gp = make_gp()
        with pytest.raises(ValueError, match="2 inputs but 3 targets"):
            standardised_errors(gp, np.zeros((2, DIM)), np.zeros(3))

    def test_report_matches_manual_posterior(self):
        gp = make_gp(noise_variance=0.01)
        rng = np.random.default_rng(0)
        x = rng.random((50, DIM))
        mean = rng.normal(size=50)
        var = np.full(50, 0.03)
        y = mean + rng.normal(scale=0.2, size=50)
        report = calibration_report(gp, x, y, posterior=(mean, var))
        std = math.sqrt(0.03 + 0.01)
        assert report["n"] == 50
        np.testing.assert_allclose(
            report["mean_interval_width"], 2.0 * 2.0 * std, rtol=1e-12
        )
        expected_errors = (y - mean) / std
        np.testing.assert_allclose(
            report["error_mean"], expected_errors.mean(), rtol=1e-9
        )


class TestExpectedCoverage:
    def test_round_trip_with_gaussian_samples(self):
        """Empirical coverage of N(0,1) draws converges to the formula."""
        rng = np.random.default_rng(1)
        draws = rng.normal(size=200_000)
        for z in (0.5, 1.0, 2.0, 3.0):
            empirical = float(np.mean(np.abs(draws) <= z))
            assert abs(empirical - expected_coverage(z)) < 5e-3

    def test_known_values(self):
        np.testing.assert_allclose(expected_coverage(1.0), 0.6826894921)
        np.testing.assert_allclose(expected_coverage(2.0), 0.9544997361)
        assert expected_coverage(8.0) == pytest.approx(1.0)

    def test_interval_coverage_consistency(self):
        """interval_coverage on calibrated synthetic data ≈ expected."""
        gp = make_gp(noise_variance=1e-12)
        rng = np.random.default_rng(2)
        n = 5000
        x = rng.random((n, DIM))
        mean = np.zeros(n)
        var = np.ones(n)
        y = rng.normal(size=n)
        cov = interval_coverage(gp, x, y, z=1.5, posterior=(mean, var))
        assert abs(cov - expected_coverage(1.5)) < 0.02

    def test_invalid_z_rejected(self):
        gp = make_gp()
        with pytest.raises(ValueError, match="z must be positive"):
            interval_coverage(gp, np.zeros((1, DIM)), np.zeros(1), z=0.0)


class TestRunningCalibration:
    def test_empty_state_is_nan(self):
        cal = RunningCalibration()
        assert math.isnan(cal.coverage)
        snap = cal.snapshot()
        assert snap["n"] == 0
        assert math.isnan(snap["error_mean"])
        assert math.isnan(snap["error_std"])

    def test_matches_batch_statistics(self):
        rng = np.random.default_rng(3)
        errors = rng.normal(size=500)
        cal = RunningCalibration(z=1.0)
        for e in errors:
            cal.update(float(e))
        snap = cal.snapshot()
        assert snap["n"] == 500
        np.testing.assert_allclose(
            snap["coverage"], np.mean(np.abs(errors) <= 1.0), rtol=1e-12
        )
        np.testing.assert_allclose(snap["error_mean"], errors.mean(),
                                   rtol=1e-9)
        np.testing.assert_allclose(snap["error_std"], errors.std(),
                                   rtol=1e-9)
        np.testing.assert_allclose(snap["expected"], expected_coverage(1.0))

    def test_rejects_non_finite_and_bad_z(self):
        with pytest.raises(ValueError, match="z must be positive"):
            RunningCalibration(z=0.0)
        cal = RunningCalibration()
        with pytest.raises(ValueError, match="must be finite"):
            cal.update(float("nan"))
        with pytest.raises(ValueError, match="must be finite"):
            cal.update(float("inf"))
        assert cal.n == 0  # the rejected updates left no trace

    def test_boundary_error_counts_as_within(self):
        cal = RunningCalibration(z=2.0)
        cal.update(2.0)
        cal.update(-2.0)
        cal.update(2.0000001)
        assert cal.within == 2
        assert cal.coverage == pytest.approx(2.0 / 3.0)
