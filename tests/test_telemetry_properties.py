"""Property tests for telemetry invariants (hypothesis)."""

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.telemetry import Histogram, InMemorySink
from repro.telemetry import runtime as telemetry


@pytest.fixture(autouse=True)
def clean_runtime():
    telemetry.disable()
    telemetry.reset_metrics()
    yield
    telemetry.disable()
    telemetry.reset_metrics()


# Recursive spec for a nesting tree: each node is a tuple of children.
_tree = st.recursive(
    st.tuples(),
    lambda children: st.lists(children, max_size=4).map(tuple),
    max_leaves=20,
)


@settings(max_examples=40, deadline=None)
@given(tree=_tree)
def test_child_duration_never_exceeds_parent(tree):
    """For any nesting shape, every child span fits inside its parent.

    The invariant holds by construction (both endpoints of the child's
    interval lie between the parent's), but it is what the report's
    tree aggregation relies on, so pin it against regressions in the
    stack handling.
    """
    telemetry.disable()
    telemetry.reset_metrics()
    sink = InMemorySink()
    telemetry.enable(sink)

    counter = iter(range(10_000))

    def emit(children) -> None:
        with telemetry.span(f"node.{next(counter)}"):
            for sub in children:
                emit(sub)

    emit(tree)
    telemetry.disable()
    telemetry.remove_sink(sink)

    by_id = {record["id"]: record for record in sink.spans}
    assert by_id  # at least the root was recorded
    for record in sink.spans:
        parent_id = record["parent"]
        if parent_id is None:
            assert record["trace"] == record["id"]
            assert record["depth"] == 0
            continue
        parent = by_id[parent_id]
        assert record["duration_s"] <= parent["duration_s"]
        assert record["depth"] == parent["depth"] + 1
        assert record["trace"] == parent["trace"]


@settings(max_examples=25, deadline=None)
@given(
    values=st.lists(
        st.floats(min_value=-1e6, max_value=1e6,
                  allow_nan=False, allow_infinity=False),
        min_size=0, max_size=200,
    ),
    n_threads=st.integers(min_value=1, max_value=4),
)
def test_histogram_count_equals_observations(values, n_threads):
    """count == number of observe() calls, sequentially and threaded.

    Each thread hammers the same histogram with its share of the
    values; the per-metric lock must make the totals exact, and the
    bucket counts (including overflow) must sum to the same number.
    """
    hist = Histogram("h", upper_bounds=(-10.0, 0.0, 10.0, 1e3))

    chunks = [values[i::n_threads] for i in range(n_threads)]
    threads = [
        threading.Thread(target=lambda c=chunk: [hist.observe(v) for v in c])
        for chunk in chunks
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    snap = hist.snapshot()
    assert snap["count"] == len(values)
    assert sum(snap["counts"]) == len(values)
    if values:
        assert snap["min"] == min(values)
        assert snap["max"] == max(values)
        assert snap["sum"] == pytest.approx(sum(values), abs=1e-6)
    else:
        assert snap["min"] is None and snap["max"] is None


@settings(max_examples=25, deadline=None)
@given(
    per_thread=st.integers(min_value=0, max_value=100),
    n_threads=st.integers(min_value=1, max_value=4),
)
def test_runtime_counter_under_thread_interleaving(per_thread, n_threads):
    """Registry counters are exact under concurrent inc() bursts."""
    telemetry.disable()
    telemetry.reset_metrics()
    telemetry.enable()

    def worker():
        for _ in range(per_thread):
            telemetry.inc("prop.events")
            telemetry.observe("prop.lat_s", 1e-4)

    threads = [threading.Thread(target=worker) for _ in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    telemetry.disable()

    snap = telemetry.metrics_snapshot()
    expected = per_thread * n_threads
    if expected:
        assert snap["counters"]["prop.events"] == expected
        assert snap["histograms"]["prop.lat_s"]["count"] == expected
