"""Tests for the content-addressed experiment store and its sweep hookup."""

import json
import os

import numpy as np
import pytest

import repro.experiments  # noqa: F401  (populate the spec registry)
from repro.cli import main
from repro.core.backend import NumericsConfig
from repro.experiments import spec as spec_registry
from repro.experiments.parallel import run_sweep
from repro.experiments.spec import ExperimentSpec, ParamSpec
from repro.faults.plan import FaultPlan, FaultSpec
from repro.store import (
    ENV_FINGERPRINT,
    ENV_STORE,
    ExperimentStore,
    canonical_json,
    cell_key,
    code_fingerprint,
    resolve_store_dir,
)

# -- canonical serialisation --------------------------------------------


def test_canonical_json_ignores_dict_order():
    assert canonical_json({"a": 1, "b": 2}) == canonical_json({"b": 2, "a": 1})


def test_canonical_json_normalises_numpy_and_tuples():
    assert canonical_json((1, 2.5, np.float64(3.0))) \
        == canonical_json([1, 2.5, 3.0])
    assert canonical_json({"x": np.int64(4)}) == canonical_json({"x": 4})
    assert canonical_json(np.array([1.0, 2.0])) == canonical_json([1.0, 2.0])


def test_canonical_json_rejects_nan():
    with pytest.raises(ValueError, match="non-finite"):
        canonical_json({"x": float("nan")})


# -- code fingerprint ----------------------------------------------------


def test_code_fingerprint_tracks_tree_changes(tmp_path):
    (tmp_path / "a.py").write_text("A = 1\n")
    (tmp_path / "sub").mkdir()
    (tmp_path / "sub" / "b.py").write_text("B = 2\n")
    first = code_fingerprint(tmp_path, environ={})

    (tmp_path / "a.py").write_text("A = 2\n")
    # the per-root cache must not mask the edit
    from repro.store import key as key_module

    key_module._FINGERPRINTS.clear()
    second = code_fingerprint(tmp_path, environ={})
    assert first != second
    key_module._FINGERPRINTS.clear()


def test_code_fingerprint_env_override(tmp_path):
    assert code_fingerprint(
        tmp_path, environ={ENV_FINGERPRINT: "pinned"}
    ) == "pinned"


def test_code_fingerprint_default_is_stable():
    assert code_fingerprint() == code_fingerprint()


# -- cell keys -----------------------------------------------------------

_BASE = dict(
    entropy=7,
    spawn_key=(2,),
    fault_plan=None,
    numerics=NumericsConfig(),
    code="codefp",
)


def _key(**overrides):
    kwargs = {**_BASE, **overrides}
    spec_name = kwargs.pop("spec_name", "static")
    params = kwargs.pop("params", {"delta2": 8.0, "periods": 150})
    return cell_key(spec_name, params, **kwargs)


def test_cell_key_is_deterministic():
    assert _key() == _key()
    # dict insertion order must not matter
    assert _key(params={"periods": 150, "delta2": 8.0}) == _key()
    # 64-hex SHA-256
    key = _key()
    assert len(key) == 64
    int(key, 16)


@pytest.mark.parametrize("change", [
    {"spec_name": "dynamic"},
    {"params": {"delta2": 9.0, "periods": 150}},
    {"params": {"delta2": 8.0, "periods": 151}},
    {"entropy": 8},
    {"spawn_key": (3,)},
    {"fault_plan": FaultPlan(
        specs=(FaultSpec(kind="sensor", mode="nan", at=(1,)),), seed=0
    ).to_dict()},
    {"numerics": NumericsConfig(sparse=True)},
    {"numerics": NumericsConfig(sparse=True, sparse_budget=128)},
    {"numerics": NumericsConfig(batched_heads=True)},
    {"code": "othercode"},
])
def test_cell_key_changes_with_any_field(change):
    assert _key(**change) != _key()


# -- the store itself ----------------------------------------------------

KEY_A = "aa" + "0" * 62
KEY_B = "bb" + "1" * 62


def test_store_put_get_roundtrip(tmp_path):
    store = ExperimentStore(tmp_path / "store")
    result = {"rows": [{"x": 1, "y": 2.5}], "metrics": None, "attempts": 1}
    store.put(KEY_A, result, {"spec": "toy", "cell_id": "x=1"})
    blob = store.get(KEY_A)
    assert blob["key"] == KEY_A
    assert blob["result"] == result
    assert blob["meta"]["spec"] == "toy"
    assert store.contains(KEY_A)
    assert not store.contains(KEY_B)
    assert store.get(KEY_B) is None


def test_store_corrupt_blob_is_a_miss(tmp_path):
    store = ExperimentStore(tmp_path)
    store.put(KEY_A, {"rows": []}, {})
    store.blob_path(KEY_A).write_text("{truncated")
    assert store.get(KEY_A) is None


def test_store_index_dedupes_last_wins(tmp_path):
    store = ExperimentStore(tmp_path)
    store.put(KEY_A, {"rows": [1]}, {"spec": "toy"})
    store.put(KEY_A, {"rows": [1, 2]}, {"spec": "toy"})
    entries = store.entries()
    assert len(entries) == 1
    assert entries[0]["rows"] == 2


def test_store_find_filters(tmp_path):
    store = ExperimentStore(tmp_path)
    store.put(KEY_A, {"rows": [1]}, {
        "spec": "toy", "params": {"delta2": 8.0},
        "seed": {"entropy": 0, "spawn_key": [0]},
    })
    store.put(KEY_B, {"rows": [1]}, {
        "spec": "other", "params": {"delta2": 1.0},
        "seed": {"entropy": 3, "spawn_key": [0]},
    })
    assert {e["key"] for e in store.find(spec="toy")} == {KEY_A}
    assert {e["key"] for e in store.find(seed=3)} == {KEY_B}
    # string/float spelling tolerance, as the CLI passes filters
    assert {e["key"] for e in store.find(params={"delta2": "8"})} == {KEY_A}
    assert {e["key"] for e in store.find(params={"delta2": 8})} == {KEY_A}
    assert store.find(spec="toy", seed=3) == []
    assert {e["key"] for e in store.find(key_prefix="bb")} == {KEY_B}


def test_store_verify_detects_tamper_missing_and_orphans(tmp_path):
    store = ExperimentStore(tmp_path)
    store.put(KEY_A, {"rows": [1]}, {})
    assert store.verify()["ok"] == 1

    # tamper with the blob -> checksum mismatch
    path = store.blob_path(KEY_A)
    path.write_text(path.read_text().replace('"rows": [1]', '"rows": [9]'))
    report = store.verify()
    assert report["mismatched"] == [KEY_A]

    # delete it -> missing
    path.unlink()
    report = store.verify()
    assert report["missing"] == [KEY_A]

    # a blob with no index entry -> orphan
    orphan = store.blob_path(KEY_B)
    orphan.parent.mkdir(parents=True, exist_ok=True)
    orphan.write_text("{}")
    assert len(store.verify()["orphans"]) == 1


def test_store_gc_compacts_and_deletes_orphans(tmp_path):
    store = ExperimentStore(tmp_path)
    store.put(KEY_A, {"rows": [1]}, {})
    store.put(KEY_A, {"rows": [1, 2]}, {})  # duplicate index line
    orphan = store.blob_path(KEY_B)
    orphan.parent.mkdir(parents=True, exist_ok=True)
    orphan.write_text("{}")
    # index entry whose blob vanished
    store.put(KEY_B.replace("bb", "cc"), {"rows": []}, {})
    store.blob_path(KEY_B.replace("bb", "cc")).unlink()

    stats = store.gc()
    assert stats["kept"] == 1
    assert stats["dropped_entries"] == 2
    assert stats["deleted_blobs"] == 1
    assert not orphan.exists()
    assert store.verify()["ok"] == 1
    assert store.verify()["orphans"] == []


# -- store resolution ----------------------------------------------------


def test_resolve_store_dir_precedence(tmp_path):
    env = {ENV_STORE: str(tmp_path / "env-store")}
    assert resolve_store_dir(None, environ={}) is None
    assert resolve_store_dir(None, environ=env) == tmp_path / "env-store"
    assert resolve_store_dir(
        tmp_path / "flag", environ=env
    ) == tmp_path / "flag"
    assert resolve_store_dir(tmp_path / "flag", no_store=True,
                             environ=env) is None
    assert resolve_store_dir(None, no_store=True, environ=env) is None


# -- sweep-engine integration (toy spec, serial) -------------------------

_CALLS: list = []


def _toy_cell(params, seed):
    _CALLS.append(params["x"])
    return [{"x": params["x"], "draw": int(seed.generate_state(1)[0])}]


def _toy_spec():
    return ExperimentSpec(
        name="toy-store",
        help="synthetic spec for store tests",
        params=(ParamSpec("x", type=int, default=(1, 2, 3), sweep=True),),
        run_cell=_toy_cell,
        report=lambda rows, params, out: f"{len(rows)} rows",
    )


def test_sweep_store_roundtrip_bit_identical(tmp_path):
    spec, params = _toy_spec(), _toy_spec().resolve({})
    store = tmp_path / "store"
    _CALLS.clear()
    cold = run_sweep(spec, params, seed=3, jobs=1, out=None, store=store)
    assert _CALLS == [1, 2, 3]
    assert cold.store_hits == 0

    _CALLS.clear()
    warm = run_sweep(spec, params, seed=3, jobs=1, out=None, store=store)
    assert _CALLS == []  # nothing recomputed
    assert warm.store_hits == 3
    assert all(c.store_hit for c in warm.cells)
    assert warm.pids == ()  # zero workers dispatched
    assert json.dumps(cold.rows) == json.dumps(warm.rows)  # byte-identical
    assert warm.store_path == store


def test_sweep_store_miss_on_changed_seed(tmp_path):
    spec, params = _toy_spec(), _toy_spec().resolve({})
    run_sweep(spec, params, seed=3, jobs=1, out=None, store=tmp_path)
    _CALLS.clear()
    other = run_sweep(spec, params, seed=4, jobs=1, out=None, store=tmp_path)
    assert _CALLS == [1, 2, 3]
    assert other.store_hits == 0


def test_sweep_store_miss_on_changed_param(tmp_path):
    spec = _toy_spec()
    run_sweep(spec, spec.resolve({}), seed=3, jobs=1, out=None,
              store=tmp_path)
    _CALLS.clear()
    shifted = run_sweep(spec, spec.resolve({"x": (2, 3, 4)}), seed=3,
                        jobs=1, out=None, store=tmp_path)
    # every cell's spawn key or value differs -> nothing reusable
    assert shifted.store_hits == 0
    assert _CALLS == [2, 3, 4]


def test_sweep_store_invalidated_by_code_fingerprint(tmp_path, monkeypatch):
    spec, params = _toy_spec(), _toy_spec().resolve({})
    monkeypatch.setenv(ENV_FINGERPRINT, "v1")
    run_sweep(spec, params, seed=3, jobs=1, out=None, store=tmp_path)
    monkeypatch.setenv(ENV_FINGERPRINT, "v2")
    _CALLS.clear()
    rerun = run_sweep(spec, params, seed=3, jobs=1, out=None, store=tmp_path)
    assert rerun.store_hits == 0
    assert _CALLS == [1, 2, 3]
    # and back to v1: everything hits again
    monkeypatch.setenv(ENV_FINGERPRINT, "v1")
    _CALLS.clear()
    back = run_sweep(spec, params, seed=3, jobs=1, out=None, store=tmp_path)
    assert back.store_hits == 3
    assert _CALLS == []


def test_manifest_resume_takes_precedence_and_backfills(tmp_path):
    """A pre-store manifest populates the store on its next resume."""
    spec, params = _toy_spec(), _toy_spec().resolve({})
    out = tmp_path / "out"
    store = tmp_path / "store"
    first = run_sweep(spec, params, seed=3, jobs=1, out=out)  # no store

    _CALLS.clear()
    resumed = run_sweep(spec, params, seed=3, jobs=1, out=out, store=store)
    assert _CALLS == []
    assert resumed.resumed == 3  # manifest, not store
    assert resumed.store_hits == 0
    assert len(ExperimentStore(store).entries()) == 3  # backfilled

    # fresh out dir: now the store serves everything
    _CALLS.clear()
    warm = run_sweep(spec, params, seed=3, jobs=1, out=tmp_path / "out2",
                     store=store)
    assert warm.store_hits == 3
    assert json.dumps(warm.rows) == json.dumps(first.rows)


def test_store_hit_cells_checkpoint_to_manifest(tmp_path):
    """Store-served cells still land in the manifest for later resumes."""
    spec, params = _toy_spec(), _toy_spec().resolve({})
    store = tmp_path / "store"
    run_sweep(spec, params, seed=3, jobs=1, out=None, store=store)
    out = tmp_path / "out"
    warm = run_sweep(spec, params, seed=3, jobs=1, out=out, store=store)
    assert warm.store_hits == 3
    # third run: no store, resumes from the manifest the warm run wrote
    _CALLS.clear()
    resumed = run_sweep(spec, params, seed=3, jobs=1, out=out)
    assert resumed.resumed == 3
    assert _CALLS == []


def test_traced_run_does_not_reuse_untraced_blob(tmp_path):
    """A blob without decision records cannot serve --trace-decisions."""
    spec = spec_registry.get("static")
    params = spec.resolve({"delta2": (1.0,), "periods": 3, "levels": 3})
    store = tmp_path / "store"
    cold = run_sweep(spec, params, seed=0, jobs=1, out=None, store=store)
    assert cold.store_hits == 0

    traced = run_sweep(
        spec, params, seed=0, jobs=1, out=None, store=store,
        decision_path=tmp_path / "trace.jsonl",
    )
    assert traced.store_hits == 0  # recomputed to capture the trace
    assert json.dumps(traced.rows) == json.dumps(cold.rows)

    # the write-through refreshed the blobs with decisions: now a hit
    warm = run_sweep(
        spec, params, seed=0, jobs=1, out=None, store=store,
        decision_path=tmp_path / "trace2.jsonl",
    )
    assert warm.store_hits == len(warm.cells)
    records = [
        json.loads(line)
        for line in (tmp_path / "trace2.jsonl").read_text().splitlines()
    ]
    assert records and all(r.get("store_hit") for r in records)
    assert json.dumps(warm.rows) == json.dumps(cold.rows)


def test_quarantined_cells_are_not_stored(tmp_path):
    def _bomb(params, seed):
        raise RuntimeError("boom")

    spec = ExperimentSpec(
        name="toy-bomb", help="always fails",
        params=(ParamSpec("x", type=int, default=(1,), sweep=True),),
        run_cell=_bomb, report=lambda rows, params, out: "",
    )
    result = run_sweep(spec, spec.resolve({}), seed=0, jobs=1, out=None,
                       store=tmp_path, max_retries=0, retry_backoff_s=0.0)
    assert len(result.quarantined) == 1
    assert ExperimentStore(tmp_path).entries() == []


# -- registered-spec integration: --jobs N and the CLI -------------------


def _static_tiny():
    spec = spec_registry.get("static")
    return spec, spec.resolve({"delta2": (1.0, 8.0), "periods": 3,
                               "levels": 3})


def test_store_warm_rerun_matches_cold_at_any_jobs(tmp_path):
    """Cache-hit sweep output is bit-identical at --jobs 1 and --jobs N."""
    spec, params = _static_tiny()
    store = tmp_path / "store"
    cold = run_sweep(spec, params, seed=7, jobs=2, out=None, store=store)
    assert cold.store_hits == 0
    assert len(cold.pids) >= 1

    warm_serial = run_sweep(spec, params, seed=7, jobs=1, out=None,
                            store=store)
    warm_pool = run_sweep(spec, params, seed=7, jobs=2, out=None,
                          store=store)
    for warm in (warm_serial, warm_pool):
        assert warm.store_hits == len(warm.cells)
        assert warm.pids == ()  # zero workers dispatched
        assert json.dumps(warm.rows) == json.dumps(cold.rows)


def test_cli_store_roundtrip(tmp_path, capsys):
    store = tmp_path / "store"
    argv = [
        "run", "static", "--sweep", "delta2=1", "--set", "periods=3",
        "--set", "levels=3", "--store", str(store),
    ]
    assert main(argv + ["--out", str(tmp_path / "cold")]) == 0
    capsys.readouterr()
    assert main(argv + ["--out", str(tmp_path / "warm")]) == 0
    out = capsys.readouterr().out
    assert "store hits: 3/3" in out

    assert main(["results", "list", "--store", str(store)]) == 0
    assert "static" in capsys.readouterr().out
    assert main(["results", "verify", "--store", str(store)]) == 0
    capsys.readouterr()
    key = ExperimentStore(store).entries()[0]["key"]
    assert main(["results", "show", key[:12], "--store", str(store)]) == 0
    assert "static" in capsys.readouterr().out
    assert main(["results", "gc", "--store", str(store)]) == 0


def test_cli_no_store_overrides_env(tmp_path, capsys, monkeypatch):
    store = tmp_path / "store"
    monkeypatch.setenv(ENV_STORE, str(store))
    argv = [
        "run", "static", "--sweep", "delta2=1", "--set", "periods=3",
        "--set", "levels=3",
    ]
    assert main(argv + ["--out", str(tmp_path / "a")]) == 0
    assert os.path.isdir(store)  # env-resolved store was populated
    capsys.readouterr()
    assert main(argv + ["--out", str(tmp_path / "b"), "--no-store"]) == 0
    assert "store hits" not in capsys.readouterr().out


def test_cli_results_without_store_errors(monkeypatch):
    monkeypatch.delenv(ENV_STORE, raising=False)
    with pytest.raises(SystemExit, match="no store configured"):
        main(["results", "list"])


def test_cli_verify_exit_codes_gate_ci(tmp_path, capsys):
    """``repro results verify`` must fail loudly on broken blobs.

    CI gates on the exit code and greps the one-line ``verify:``
    summary, so both are regression-tested for the missing-blob and
    corrupt-blob cases.
    """
    store = ExperimentStore(tmp_path / "store")
    store.put(KEY_A, {"rows": [1]}, {})
    argv = ["results", "verify", "--store", str(store.root)]

    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "verify: 1 entr(ies), ok 1" in out

    # corrupt the blob in place -> checksum mismatch, exit 1
    path = store.blob_path(KEY_A)
    path.write_text(path.read_text().replace('"rows": [1]', '"rows": [9]'))
    assert main(argv) == 1
    captured = capsys.readouterr()
    assert "mismatched 1" in captured.out
    assert "FAILED" in captured.err

    # delete it -> missing, exit 1
    path.unlink()
    assert main(argv) == 1
    captured = capsys.readouterr()
    assert "missing 1" in captured.out
    assert "FAILED" in captured.err
