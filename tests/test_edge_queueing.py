"""Tests for the MVA closed-network solvers.

Exact MVA has textbook closed forms for small cases; the approximate
solver is validated against the exact one.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.edge.queueing import (
    ClosedNetwork,
    DelayStation,
    QueueingStation,
    solve_exact_mva,
    solve_schweitzer,
)


def single_class_network(n_customers, service_s, think_s):
    return ClosedNetwork(
        populations=(n_customers,),
        stations=(QueueingStation("gpu", (service_s,)),),
        think_times_s=(think_s,),
    )


class TestExactMVASingleClass:
    def test_one_customer_no_queueing(self):
        """With one customer the response time equals the service time."""
        net = single_class_network(1, 0.1, 0.4)
        sol = solve_exact_mva(net)
        assert sol.response_times[0, 0] == pytest.approx(0.1)
        assert sol.throughputs[0] == pytest.approx(1.0 / 0.5)
        assert sol.cycle_times[0] == pytest.approx(0.5)

    def test_machine_repairman_two_customers(self):
        """N=2, service 1, no think: known MVA recursion values.

        R(1) = 1, X(1) = 1; R(2) = 1 * (1 + Q(1)) = 2, X(2) = 2/2 = 1.
        """
        net = single_class_network(2, 1.0, 0.0)
        sol = solve_exact_mva(net)
        assert sol.response_times[0, 0] == pytest.approx(2.0)
        assert sol.throughputs[0] == pytest.approx(1.0)

    def test_utilization_below_one(self):
        net = single_class_network(5, 0.2, 0.1)
        sol = solve_exact_mva(net)
        assert sol.utilizations[0] <= 1.0 + 1e-9

    def test_queue_lengths_sum_to_population(self):
        """Customers are either at stations or thinking."""
        think = 0.3
        net = single_class_network(4, 0.2, think)
        sol = solve_exact_mva(net)
        thinking = sol.throughputs[0] * think
        assert sol.queue_lengths.sum() + thinking == pytest.approx(4.0)

    def test_delay_station_never_queues(self):
        net = ClosedNetwork(
            populations=(5,),
            stations=(DelayStation("radio", (0.2,)),),
            think_times_s=(0.0,),
        )
        sol = solve_exact_mva(net)
        assert sol.response_times[0, 0] == pytest.approx(0.2)
        assert sol.throughputs[0] == pytest.approx(5.0 / 0.2)

    def test_empty_population(self):
        net = single_class_network(0, 0.2, 0.1)
        sol = solve_exact_mva(net)
        assert sol.throughputs[0] == 0.0
        assert sol.queue_lengths[0] == 0.0


class TestExactMVAMultiClass:
    def make_two_class(self, tx_a=0.1, tx_b=0.4, gpu=0.15, think=0.03):
        return ClosedNetwork(
            populations=(1, 1),
            stations=(
                DelayStation("radio", (tx_a, tx_b)),
                QueueingStation("gpu", (gpu, gpu)),
            ),
            think_times_s=(think, think),
        )

    def test_symmetric_classes_equal(self):
        net = self.make_two_class(tx_a=0.2, tx_b=0.2)
        sol = solve_exact_mva(net)
        assert sol.throughputs[0] == pytest.approx(sol.throughputs[1])
        assert sol.cycle_times[0] == pytest.approx(sol.cycle_times[1])

    def test_slower_radio_user_cycles_slower(self):
        sol = solve_exact_mva(self.make_two_class())
        assert sol.cycle_times[1] > sol.cycle_times[0]

    def test_gpu_queueing_increases_response(self):
        """Shared-GPU response exceeds the bare service time with 2 users."""
        sol = solve_exact_mva(self.make_two_class())
        assert sol.response_times[1, 0] > 0.15
        assert sol.response_times[1, 1] > 0.15

    def test_station_demand_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ClosedNetwork(
                populations=(1, 1),
                stations=(QueueingStation("gpu", (0.1,)),),
            )

    def test_zero_population_class_ignored(self):
        net = ClosedNetwork(
            populations=(1, 0),
            stations=(QueueingStation("gpu", (0.2, 0.3)),),
            think_times_s=(0.1, 0.1),
        )
        sol = solve_exact_mva(net)
        assert sol.throughputs[1] == 0.0
        assert sol.cycle_times[1] == 0.0
        assert sol.throughputs[0] == pytest.approx(1.0 / 0.3)


class TestSchweitzer:
    def test_matches_exact_single_class(self):
        net = single_class_network(3, 0.2, 0.1)
        exact = solve_exact_mva(net)
        approx = solve_schweitzer(net)
        np.testing.assert_allclose(
            approx.throughputs, exact.throughputs, rtol=0.05
        )

    def test_matches_exact_multiclass(self):
        net = ClosedNetwork(
            populations=(1, 1, 1),
            stations=(
                DelayStation("radio", (0.1, 0.2, 0.4)),
                QueueingStation("gpu", (0.15, 0.15, 0.15)),
            ),
            think_times_s=(0.03, 0.03, 0.03),
        )
        exact = solve_exact_mva(net)
        approx = solve_schweitzer(net)
        np.testing.assert_allclose(
            approx.throughputs, exact.throughputs, rtol=0.12
        )
        np.testing.assert_allclose(
            approx.cycle_times, exact.cycle_times, rtol=0.12
        )

    def test_empty_network(self):
        net = single_class_network(0, 0.2, 0.1)
        sol = solve_schweitzer(net)
        assert sol.throughputs[0] == 0.0

    @given(
        st.integers(1, 5),
        st.floats(0.01, 0.5),
        st.floats(0.0, 0.5),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_schweitzer_close_to_exact(self, n, service, think):
        net = single_class_network(n, service, think)
        exact = solve_exact_mva(net)
        approx = solve_schweitzer(net)
        assert approx.throughputs[0] == pytest.approx(
            exact.throughputs[0], rel=0.15
        )

    @given(st.integers(1, 6), st.floats(0.01, 0.3), st.floats(0.01, 0.3))
    @settings(max_examples=30, deadline=None)
    def test_property_utilization_at_most_one(self, n, service, think):
        net = single_class_network(n, service, think)
        for sol in (solve_exact_mva(net), solve_schweitzer(net)):
            assert sol.utilizations[0] <= 1.0 + 1e-6

    @given(st.integers(2, 6))
    @settings(max_examples=20, deadline=None)
    def test_property_throughput_increases_with_population(self, n):
        """More closed-loop customers never decrease total throughput."""
        smaller = solve_exact_mva(single_class_network(n - 1, 0.1, 0.2))
        larger = solve_exact_mva(single_class_network(n, 0.1, 0.2))
        assert larger.throughputs[0] >= smaller.throughputs[0] - 1e-9
