"""Tests for the exact GP (posterior eqs. 3-4, incremental updates)."""

import numpy as np
import pytest

from repro.core.gp import GaussianProcess
from repro.core.kernels import Matern, RBF


def make_gp(**kwargs):
    defaults = dict(
        kernel=Matern(lengthscales=[1.0], output_scale=1.0),
        noise_variance=1e-4,
    )
    defaults.update(kwargs)
    return GaussianProcess(**defaults)


def reference_posterior(kernel, noise, x_train, y_train, x_star,
                        prior_mean=0.0):
    """Direct dense implementation of eqs. (3)-(4)."""
    gram = kernel(x_train, x_train) + noise * np.eye(len(x_train))
    k_star = kernel(x_train, x_star)
    inv = np.linalg.inv(gram)
    mean = prior_mean + k_star.T @ inv @ (y_train - prior_mean)
    var = kernel.diag(x_star) - np.sum(k_star * (inv @ k_star), axis=0)
    return mean, var


class TestPrior:
    def test_prior_mean_and_variance(self):
        gp = make_gp(prior_mean=2.0)
        mean, var = gp.predict(np.array([[0.0], [1.0]]))
        np.testing.assert_allclose(mean, [2.0, 2.0])
        np.testing.assert_allclose(var, [1.0, 1.0])

    def test_invalid_prior_mean(self):
        with pytest.raises(ValueError):
            make_gp(prior_mean=float("nan"))


class TestPosterior:
    def test_matches_direct_formula(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(-2, 2, size=(15, 2))
        y = np.sin(x[:, 0]) + 0.5 * x[:, 1]
        kernel = Matern(lengthscales=[0.8, 1.2], output_scale=1.5)
        gp = GaussianProcess(kernel, noise_variance=0.01)
        gp.fit(x, y)
        x_star = rng.uniform(-2, 2, size=(7, 2))
        mean, var = gp.predict(x_star)
        ref_mean, ref_var = reference_posterior(kernel, 0.01, x, y, x_star)
        np.testing.assert_allclose(mean, ref_mean, rtol=1e-8, atol=1e-10)
        np.testing.assert_allclose(var, ref_var, rtol=1e-6, atol=1e-10)

    def test_interpolates_training_data(self):
        x = np.array([[0.0], [1.0], [2.0]])
        y = np.array([1.0, -1.0, 0.5])
        gp = make_gp(noise_variance=1e-8)
        gp.fit(x, y)
        mean, var = gp.predict(x)
        np.testing.assert_allclose(mean, y, atol=1e-4)
        assert np.all(var < 1e-4)

    def test_variance_shrinks_near_data(self):
        gp = make_gp()
        gp.fit(np.array([[0.0]]), np.array([1.0]))
        _, var_near = gp.predict(np.array([[0.1]]))
        _, var_far = gp.predict(np.array([[5.0]]))
        assert var_near[0] < var_far[0]

    def test_mean_reverts_to_prior_far_away(self):
        gp = make_gp(prior_mean=3.0)
        gp.fit(np.array([[0.0]]), np.array([10.0]))
        mean, _ = gp.predict(np.array([[100.0]]))
        assert mean[0] == pytest.approx(3.0, abs=1e-6)

    def test_variance_never_negative(self):
        rng = np.random.default_rng(1)
        x = rng.uniform(0, 1, size=(40, 3))
        y = rng.normal(size=40)
        gp = GaussianProcess(
            Matern(lengthscales=[0.5, 0.5, 0.5]), noise_variance=1e-6
        )
        gp.fit(x, y)
        _, var = gp.predict(rng.uniform(0, 1, size=(100, 3)))
        assert np.all(var >= 0)


class TestIncrementalUpdates:
    def test_add_matches_batch_fit(self):
        rng = np.random.default_rng(2)
        x = rng.uniform(-1, 1, size=(20, 2))
        y = rng.normal(size=20)
        kernel = Matern(lengthscales=[0.7, 0.9])

        batch = GaussianProcess(kernel, noise_variance=0.01)
        batch.fit(x, y)
        online = GaussianProcess(kernel, noise_variance=0.01)
        for xi, yi in zip(x, y):
            online.add(xi, yi)

        x_star = rng.uniform(-1, 1, size=(9, 2))
        m1, v1 = batch.predict(x_star)
        m2, v2 = online.predict(x_star)
        np.testing.assert_allclose(m1, m2, rtol=1e-7, atol=1e-9)
        np.testing.assert_allclose(v1, v2, rtol=1e-5, atol=1e-9)

    def test_duplicate_points_stay_stable(self):
        gp = make_gp(noise_variance=1e-6)
        for _ in range(10):
            gp.add(np.array([0.5]), 1.0)
        mean, var = gp.predict(np.array([[0.5]]))
        assert mean[0] == pytest.approx(1.0, abs=1e-3)
        assert np.isfinite(var[0])

    def test_add_rejects_nonfinite(self):
        gp = make_gp()
        with pytest.raises(ValueError):
            gp.add(np.array([np.inf]), 1.0)
        with pytest.raises(ValueError):
            gp.add(np.array([0.0]), float("nan"))

    def test_n_observations(self):
        gp = make_gp()
        assert gp.n_observations == 0
        gp.add(np.array([0.0]), 1.0)
        gp.add(np.array([1.0]), 2.0)
        assert gp.n_observations == 2


class TestEviction:
    def test_budget_enforced(self):
        gp = make_gp(max_observations=10, eviction_block=5)
        for i in range(30):
            gp.add(np.array([float(i)]), float(i))
        assert gp.n_observations <= 15

    def test_keeps_most_recent(self):
        gp = make_gp(max_observations=5, eviction_block=2)
        for i in range(20):
            gp.add(np.array([float(i)]), float(i))
        assert gp.inputs[-1, 0] == 19.0
        # Predictions near recent data stay accurate.
        mean, _ = gp.predict(np.array([[19.0]]))
        assert mean[0] == pytest.approx(19.0, abs=0.5)

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            make_gp(max_observations=0)


class TestValidationAndMisc:
    def test_fit_shape_checks(self):
        gp = make_gp()
        with pytest.raises(ValueError):
            gp.fit(np.zeros((3, 1)), np.zeros(2))
        with pytest.raises(ValueError):
            gp.fit(np.zeros((3, 2)), np.zeros(3))

    def test_predict_dim_check(self):
        gp = make_gp()
        with pytest.raises(ValueError):
            gp.predict(np.zeros((2, 3)))

    def test_predict_rejects_nonfinite_queries(self):
        gp = make_gp()
        gp.fit(np.array([[0.0], [1.0]]), np.array([1.0, 2.0]))
        for bad in (np.nan, np.inf, -np.inf):
            with pytest.raises(ValueError, match="finite"):
                gp.predict(np.array([[bad]]))
            with pytest.raises(ValueError, match="finite"):
                gp.predict_std(np.array([[0.5], [bad]]))

    def test_prior_predict_rejects_nonfinite_queries(self):
        # The validation must also guard the no-observations path.
        gp = make_gp()
        with pytest.raises(ValueError, match="finite"):
            gp.predict(np.array([[np.nan]]))

    def test_nonfinite_error_names_first_bad_coordinate(self):
        # Regression: the error must say *which* entry is bad, not just
        # that one exists (debugging a 14641x6 grid without the index
        # was hopeless).
        gp = make_gp(kernel=Matern(lengthscales=[1.0, 1.0], output_scale=1.0))
        queries = np.zeros((4, 2))
        queries[2, 1] = np.inf
        with pytest.raises(ValueError, match=r"\(2, 1\)") as excinfo:
            gp.predict(queries)
        assert "inf" in str(excinfo.value)

        queries[2, 1] = np.nan
        queries[1, 0] = np.nan  # earlier in row-major order -> reported
        with pytest.raises(ValueError, match=r"\(1, 0\)"):
            gp.predict_std(queries)

    def test_nonfinite_error_names_index_on_fit_and_add(self):
        gp = make_gp()
        x = np.array([[0.0], [np.nan], [1.0]])
        with pytest.raises(ValueError, match=r"\(1, 0\)"):
            gp.fit(x, np.array([1.0, 2.0, 3.0]))
        with pytest.raises(ValueError, match=r"\(1,\)"):
            gp.fit(np.array([[0.0], [1.0], [2.0]]),
                   np.array([1.0, np.inf, 3.0]))
        with pytest.raises(ValueError, match=r"\(0,\)"):
            gp.add(np.array([np.nan]), 1.0)

    def test_predict_std(self):
        gp = make_gp()
        gp.add(np.array([0.0]), 1.0)
        mean, std = gp.predict_std(np.array([[0.0]]))
        _, var = gp.predict(np.array([[0.0]]))
        assert std[0] == pytest.approx(np.sqrt(var[0]))

    def test_posterior_samples_distribution(self):
        gp = GaussianProcess(RBF(lengthscales=[1.0]), noise_variance=1e-4)
        gp.fit(np.array([[0.0], [1.0]]), np.array([0.0, 1.0]))
        x_star = np.array([[0.5]])
        draws = gp.sample_posterior(x_star, n_samples=4000, rng=0)
        mean, var = gp.predict(x_star)
        assert draws.mean() == pytest.approx(mean[0], abs=0.05)
        assert draws.var() == pytest.approx(var[0], abs=0.05)

    def test_targets_property(self):
        gp = make_gp()
        gp.add(np.array([0.0]), 5.0)
        np.testing.assert_array_equal(gp.targets, [5.0])
