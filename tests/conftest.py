"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.testbed.config import (
    ControlPolicy,
    CostWeights,
    ServiceConstraints,
    TestbedConfig,
)
from repro.testbed.scenarios import static_scenario


@pytest.fixture
def testbed_config() -> TestbedConfig:
    """Default calibrated deployment."""
    return TestbedConfig()


@pytest.fixture
def coarse_config() -> TestbedConfig:
    """Coarse control grid for fast learning tests (5^4 = 625 points)."""
    return TestbedConfig(n_levels=5)


@pytest.fixture
def static_env(testbed_config):
    """Good-channel single-user environment, seeded."""
    return static_scenario(mean_snr_db=35.0, rng=0, config=testbed_config)


@pytest.fixture
def max_policy() -> ControlPolicy:
    return ControlPolicy.max_resources()


@pytest.fixture
def medium_constraints() -> ServiceConstraints:
    return ServiceConstraints(d_max_s=0.4, rho_min=0.5)


@pytest.fixture
def unit_weights() -> CostWeights:
    return CostWeights(delta1=1.0, delta2=1.0)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(42)
