"""End-to-end integration tests: the paper's headline behaviours.

These are scaled-down versions of the evaluation scenarios; the full
parameterisations live in ``benchmarks/``.
"""

import numpy as np

from repro.bandit import ExhaustiveOracle
from repro.core import EdgeBOL
from repro.experiments.comparison import (
    ComparisonSetting,
    run_ddpg_comparison,
    run_edgebol_comparison,
    violation_series,
)
from repro.experiments.dynamic import DynamicSetting, run_dynamic
from repro.experiments.heterogeneous import run_heterogeneous_cell
from repro.experiments.runner import run_agent
from repro.testbed.config import (
    CostWeights,
    ServiceConstraints,
    TestbedConfig,
)
from repro.testbed.scenarios import static_scenario


class TestConvergenceBehaviour:
    """Fig. 9 shape: convergence in tens of periods, constraints hold."""

    def test_converges_and_respects_constraints(self):
        testbed = TestbedConfig(n_levels=9)
        env = static_scenario(mean_snr_db=35.0, rng=0, config=testbed)
        agent = EdgeBOL(
            testbed.control_grid(),
            ServiceConstraints(0.4, 0.5),
            CostWeights(1.0, 1.0),
        )
        log = run_agent(env, agent, 100, track_safe_set=True)
        assert np.mean(log.cost[-20:]) < np.mean(log.cost[:5]) * 0.95
        delay_viol, map_viol = log.violation_rates(burn_in=30)
        assert delay_viol <= 0.1 and map_viol <= 0.05
        assert log.safe_set_size[-1] > log.safe_set_size[0]

    def test_higher_delta2_shifts_power_to_server(self):
        """Fig. 9/10: large delta2 lowers BS power at the server's
        expense (relative shift)."""
        def converged_powers(delta2):
            testbed = TestbedConfig(n_levels=9)
            env = static_scenario(mean_snr_db=35.0, rng=1, config=testbed)
            agent = EdgeBOL(
                testbed.control_grid(),
                ServiceConstraints(0.5, 0.4),
                CostWeights(1.0, delta2),
            )
            log = run_agent(env, agent, 100)
            return (
                log.tail_mean("server_power_w", 20),
                log.tail_mean("bs_power_w", 20),
            )

        server_low, bs_low = converged_powers(1.0)
        server_high, bs_high = converged_powers(64.0)
        assert bs_high < bs_low
        assert server_high > server_low * 0.9  # server power not also cut


class TestOptimalityGap:
    def test_near_oracle_static(self):
        """Fig. 10: EdgeBOL converges near the offline optimum."""
        testbed = TestbedConfig(n_levels=9)
        weights = CostWeights(1.0, 1.0)
        constraints = ServiceConstraints(0.4, 0.5)

        env = static_scenario(mean_snr_db=35.0, rng=2, config=testbed)
        agent = EdgeBOL(testbed.control_grid(), constraints, weights)
        log = run_agent(env, agent, 120)
        cost = log.tail_mean("cost", 30)

        oracle_env = static_scenario(mean_snr_db=35.0, rng=3, config=testbed)
        oracle = ExhaustiveOracle(oracle_env, weights)
        best = oracle.best(constraints, snrs_db=[35.0])
        assert best.feasible
        assert cost <= best.cost * 1.25  # within 25% on the short run


class TestHeterogeneousUsers:
    def test_gap_small_with_aggregated_context(self):
        """Fig. 12: aggregated CQI context keeps the gap small."""
        result = run_heterogeneous_cell(
            n_users=3, delta2=1.0, n_periods=80, seed=0,
            testbed=TestbedConfig(n_levels=7),
        )
        assert result.oracle_cost > 0
        assert result.gap < 0.30
        assert result.delay_violation_rate < 0.15


class TestDynamicContexts:
    def test_safe_set_tracks_context(self):
        """Fig. 13: the safe set fluctuates with the SNR sweep but the
        agent keeps selecting feasible controls."""
        setting = DynamicSetting(n_periods=100)
        log = run_dynamic(setting, seed=0, testbed=TestbedConfig(n_levels=7))
        assert len(log) == 100
        sizes = np.array(log.safe_set_size)
        assert sizes.max() > 5
        # SNR range actually covered.
        assert max(log.snr_db) - min(log.snr_db) > 20


class TestConstraintSwitching:
    def test_edgebol_adapts_faster_than_ddpg(self):
        """Fig. 14 shape (scaled down): after a constraint switch,
        EdgeBOL's violation magnitude stays below DDPG's."""
        setting = ComparisonSetting(
            n_periods=240, first_switch=80, second_switch=160, n_levels=7,
            max_observations=300,
        )
        edgebol_log = run_edgebol_comparison(setting, seed=0)
        ddpg_log = run_ddpg_comparison(setting, seed=0)

        edgebol_viol = violation_series(edgebol_log)
        ddpg_viol = violation_series(ddpg_log)
        # Compare mean violation magnitude over the run.
        e_total = (
            edgebol_viol["delay_violation"].mean()
            + edgebol_viol["map_violation"].mean()
        )
        d_total = (
            ddpg_viol["delay_violation"].mean()
            + ddpg_viol["map_violation"].mean()
        )
        assert e_total < d_total

    def test_edgebol_recovers_after_switch(self):
        setting = ComparisonSetting(
            n_periods=160, first_switch=80, second_switch=150, n_levels=7,
            max_observations=300,
        )
        log = run_edgebol_comparison(setting, seed=1)
        violations = violation_series(log)
        # Shortly after the switch at t=80 the agent is feasible again.
        post = slice(90, 140)
        assert violations["delay_violation"][post].mean() < 0.05
        assert violations["map_violation"][post].mean() < 0.05


class TestDetectorModeEndToEnd:
    def test_learning_with_real_map_pipeline(self):
        """EdgeBOL learns against the full synthetic-detector mAP."""
        testbed = TestbedConfig(n_levels=5, images_per_measurement=60)
        env = static_scenario(
            mean_snr_db=35.0, rng=4, config=testbed, map_mode="detector"
        )
        agent = EdgeBOL(
            testbed.control_grid(),
            ServiceConstraints(0.4, 0.45),
            CostWeights(1.0, 1.0),
        )
        log = run_agent(env, agent, 30)
        assert np.all(np.isfinite(log.map_score))
        assert log.tail_mean("map_score", 10) > 0.4
