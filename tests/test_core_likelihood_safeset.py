"""Tests for LML hyperparameter fitting, safe set and acquisition."""

import numpy as np
import pytest

from repro.core.acquisition import (
    greedy_mean_index,
    max_variance_index,
    random_safe_index,
    safe_lcb_index,
)
from repro.core.gp import GaussianProcess
from repro.core.kernels import Matern
from repro.core.likelihood import fit_hyperparameters, log_marginal_likelihood
from repro.core.safeset import SafeSetEstimator


def sample_function(rng, n=40, lengthscale=0.4, noise=0.05):
    x = rng.uniform(0, 1, size=(n, 1))
    y = np.sin(x[:, 0] * 6.0) + rng.normal(0, noise, size=n)
    return x, y


class TestLogMarginalLikelihood:
    def test_matches_manual_computation(self):
        kernel = Matern(lengthscales=[1.0], output_scale=1.0)
        x = np.array([[0.0], [1.0]])
        y = np.array([0.5, -0.5])
        noise = 0.1
        gram = kernel(x, x) + noise * np.eye(2)
        manual = (
            -0.5 * y @ np.linalg.inv(gram) @ y
            - 0.5 * np.log(np.linalg.det(gram))
            - np.log(2 * np.pi)
        )
        assert log_marginal_likelihood(kernel, noise, x, y) == pytest.approx(manual)

    def test_good_hyperparams_score_higher(self):
        rng = np.random.default_rng(0)
        x, y = sample_function(rng)
        good = Matern(lengthscales=[0.3], output_scale=1.0)
        bad = Matern(lengthscales=[100.0], output_scale=1e-4)
        assert (
            log_marginal_likelihood(good, 0.01, x, y)
            > log_marginal_likelihood(bad, 0.01, x, y)
        )

    def test_invalid_noise(self):
        kernel = Matern(lengthscales=[1.0])
        with pytest.raises(ValueError):
            log_marginal_likelihood(kernel, 0.0, np.zeros((2, 1)), np.zeros(2))


class TestFitHyperparameters:
    def test_improves_lml(self):
        rng = np.random.default_rng(1)
        x, y = sample_function(rng)
        seed_kernel = Matern(lengthscales=[5.0], output_scale=0.1)
        initial = log_marginal_likelihood(seed_kernel, 0.5, x, y)
        fitted_kernel, fitted_noise, final = fit_hyperparameters(
            seed_kernel, x, y, noise_variance=0.5, n_restarts=2, rng=0
        )
        assert final >= initial
        assert fitted_noise > 0
        assert np.all(fitted_kernel.lengthscales > 0)

    def test_recovers_noise_scale(self):
        rng = np.random.default_rng(2)
        x, y = sample_function(rng, n=80, noise=0.1)
        _, fitted_noise, _ = fit_hyperparameters(
            Matern(lengthscales=[0.5]), x, y, noise_variance=0.01,
            n_restarts=2, rng=0,
        )
        assert 0.001 < fitted_noise < 0.1

    def test_fixed_noise_mode(self):
        rng = np.random.default_rng(3)
        x, y = sample_function(rng)
        _, noise, _ = fit_hyperparameters(
            Matern(lengthscales=[1.0]), x, y,
            noise_variance=0.123, optimize_noise=False, rng=0, n_restarts=1,
        )
        assert noise == 0.123


def build_constraint_gps():
    """Delay GP trained low around x=0.2, high around x=0.8; mAP GP
    high around x=0.2."""
    kernel = Matern(lengthscales=[0.2], output_scale=0.04)
    delay_gp = GaussianProcess(kernel, noise_variance=1e-4, prior_mean=1.0)
    map_gp = GaussianProcess(kernel, noise_variance=1e-4, prior_mean=0.0)
    for _ in range(5):
        delay_gp.add(np.array([0.2]), 0.2)
        delay_gp.add(np.array([0.8]), 0.9)
        map_gp.add(np.array([0.2]), 0.7)
        map_gp.add(np.array([0.8]), 0.7)
    return delay_gp, map_gp


class TestSafeSet:
    def test_known_safe_point_included(self):
        delay_gp, map_gp = build_constraint_gps()
        estimator = SafeSetEstimator(delay_gp, map_gp, beta=2.0)
        grid = np.linspace(0, 1, 21)[:, None]
        mask = estimator.safe_mask(grid, d_max_s=0.4, rho_min=0.5)
        idx_02 = 4  # x = 0.2
        idx_08 = 16  # x = 0.8
        assert mask[idx_02]
        assert not mask[idx_08]  # delay 0.9 > 0.4

    def test_unexplored_region_unsafe(self):
        """Pessimistic priors keep far regions out of the safe set."""
        delay_gp, map_gp = build_constraint_gps()
        estimator = SafeSetEstimator(delay_gp, map_gp, beta=2.0)
        mask = estimator.safe_mask(
            np.array([[10.0]]), d_max_s=0.4, rho_min=0.5
        )
        assert not mask[0]

    def test_always_safe_indices(self):
        delay_gp, map_gp = build_constraint_gps()
        estimator = SafeSetEstimator(delay_gp, map_gp, beta=2.0)
        grid = np.array([[10.0], [20.0]])
        mask = estimator.safe_mask(
            grid, d_max_s=0.4, rho_min=0.5, always_safe=np.array([1])
        )
        assert not mask[0] and mask[1]

    def test_always_safe_boolean_mask(self):
        delay_gp, map_gp = build_constraint_gps()
        estimator = SafeSetEstimator(delay_gp, map_gp)
        grid = np.array([[10.0], [20.0]])
        mask = estimator.safe_mask(
            grid, 0.4, 0.5, always_safe=np.array([True, False])
        )
        assert mask[0] and not mask[1]

    def test_larger_beta_shrinks_safe_set(self):
        delay_gp, map_gp = build_constraint_gps()
        grid = np.linspace(0, 1, 51)[:, None]
        small = SafeSetEstimator(delay_gp, map_gp, beta=0.5).safe_mask(grid, 0.4, 0.5)
        large = SafeSetEstimator(delay_gp, map_gp, beta=3.5).safe_mask(grid, 0.4, 0.5)
        assert small.sum() >= large.sum()

    def test_safe_set_size(self):
        delay_gp, map_gp = build_constraint_gps()
        estimator = SafeSetEstimator(delay_gp, map_gp, beta=2.0)
        grid = np.linspace(0, 1, 21)[:, None]
        size = estimator.safe_set_size(grid, 0.4, 0.5)
        assert size == estimator.safe_mask(grid, 0.4, 0.5).sum()


class TestAcquisition:
    def build_cost_gp(self):
        kernel = Matern(lengthscales=[0.2], output_scale=1.0)
        gp = GaussianProcess(kernel, noise_variance=1e-4)
        gp.add(np.array([0.2]), 5.0)
        gp.add(np.array([0.5]), 1.0)
        gp.add(np.array([0.8]), 3.0)
        return gp

    def test_lcb_picks_cheapest_when_certain(self):
        gp = self.build_cost_gp()
        grid = np.array([[0.2], [0.5], [0.8]])
        mask = np.array([True, True, True])
        assert safe_lcb_index(gp, grid, mask, beta=0.0) == 1

    def test_lcb_respects_mask(self):
        gp = self.build_cost_gp()
        grid = np.array([[0.2], [0.5], [0.8]])
        mask = np.array([True, False, True])
        assert safe_lcb_index(gp, grid, mask, beta=0.0) == 2

    def test_lcb_explores_uncertain_points(self):
        """With large beta an unexplored point's LCB wins."""
        gp = self.build_cost_gp()
        grid = np.array([[0.5], [10.0]])  # 10.0 unexplored
        mask = np.array([True, True])
        assert safe_lcb_index(gp, grid, mask, beta=5.0) == 1

    def test_empty_mask_raises(self):
        gp = self.build_cost_gp()
        with pytest.raises(ValueError):
            safe_lcb_index(gp, np.array([[0.0]]), np.array([False]))

    def test_greedy_is_beta_zero(self):
        gp = self.build_cost_gp()
        grid = np.array([[0.2], [0.5], [0.8], [100.0]])
        mask = np.ones(4, dtype=bool)
        assert greedy_mean_index(gp, grid, mask) == safe_lcb_index(
            gp, grid, mask, beta=0.0
        )

    def test_random_safe_in_mask(self):
        mask = np.array([False, True, False, True])
        for _ in range(20):
            assert random_safe_index(mask, rng=0) in (1, 3)

    def test_max_variance_prefers_unexplored(self):
        gp = self.build_cost_gp()
        grid = np.array([[0.5], [10.0]])
        mask = np.array([True, True])
        assert max_variance_index(gp, grid, mask) == 1
