"""Property-based tests for the GP's structural invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.gp import GaussianProcess
from repro.core.kernels import Matern

datasets = st.lists(
    st.tuples(
        st.floats(-2.0, 2.0, allow_nan=False),
        st.floats(-3.0, 3.0, allow_nan=False),
    ),
    min_size=2,
    max_size=12,
)


def make_gp():
    return GaussianProcess(
        Matern(lengthscales=[0.7], output_scale=1.0), noise_variance=0.01
    )


class TestGPInvariants:
    @given(datasets, st.randoms(use_true_random=False))
    @settings(max_examples=30, deadline=None)
    def test_training_order_irrelevant(self, data, shuffler):
        """The posterior is invariant to the order observations arrive."""
        forward, shuffled = make_gp(), make_gp()
        for x, y in data:
            forward.add(np.array([x]), y)
        permuted = list(data)
        shuffler.shuffle(permuted)
        for x, y in permuted:
            shuffled.add(np.array([x]), y)
        queries = np.linspace(-2, 2, 7)[:, None]
        m1, v1 = forward.predict(queries)
        m2, v2 = shuffled.predict(queries)
        np.testing.assert_allclose(m1, m2, rtol=1e-6, atol=1e-8)
        np.testing.assert_allclose(v1, v2, rtol=1e-5, atol=1e-8)

    @given(datasets)
    @settings(max_examples=30, deadline=None)
    def test_posterior_variance_never_exceeds_prior(self, data):
        gp = make_gp()
        for x, y in data:
            gp.add(np.array([x]), y)
        queries = np.linspace(-3, 3, 15)[:, None]
        _, variance = gp.predict(queries)
        prior = gp.kernel.diag(queries)
        assert np.all(variance <= prior + 1e-9)

    @given(datasets)
    @settings(max_examples=30, deadline=None)
    def test_more_data_never_raises_variance(self, data):
        """Conditioning on extra observations only shrinks uncertainty."""
        half = max(1, len(data) // 2)
        small, large = make_gp(), make_gp()
        for x, y in data[:half]:
            small.add(np.array([x]), y)
        for x, y in data:
            large.add(np.array([x]), y)
        queries = np.linspace(-2, 2, 9)[:, None]
        _, v_small = small.predict(queries)
        _, v_large = large.predict(queries)
        assert np.all(v_large <= v_small + 1e-7)

    @given(
        datasets,
        st.floats(min_value=-2.0, max_value=2.0, allow_nan=False),
    )
    @settings(max_examples=30, deadline=None)
    def test_prior_mean_shift_equivariance(self, data, shift):
        """Shifting targets and prior mean together shifts the posterior
        mean by the same amount and leaves the variance unchanged."""
        base = make_gp()
        shifted = GaussianProcess(
            Matern(lengthscales=[0.7], output_scale=1.0),
            noise_variance=0.01,
            prior_mean=shift,
        )
        for x, y in data:
            base.add(np.array([x]), y)
            shifted.add(np.array([x]), y + shift)
        queries = np.linspace(-2, 2, 7)[:, None]
        m1, v1 = base.predict(queries)
        m2, v2 = shifted.predict(queries)
        np.testing.assert_allclose(m2, m1 + shift, rtol=1e-6, atol=1e-7)
        np.testing.assert_allclose(v2, v1, rtol=1e-8, atol=1e-10)

    def test_eviction_matches_window_refit(self):
        """After eviction, predictions equal a fresh fit on the kept
        window (subset-of-data is exact on the retained points)."""
        rng = np.random.default_rng(0)
        xs = rng.uniform(-2, 2, size=40)
        ys = np.sin(xs) + rng.normal(0, 0.05, size=40)
        online = GaussianProcess(
            Matern(lengthscales=[0.7]), noise_variance=0.01,
            max_observations=10, eviction_block=5,
        )
        for x, y in zip(xs, ys):
            online.add(np.array([x]), y)
        fresh = GaussianProcess(Matern(lengthscales=[0.7]), noise_variance=0.01)
        fresh.fit(online.inputs, online.targets)
        queries = np.linspace(-2, 2, 11)[:, None]
        m1, v1 = online.predict(queries)
        m2, v2 = fresh.predict(queries)
        np.testing.assert_allclose(m1, m2, rtol=1e-8)
        np.testing.assert_allclose(v1, v2, rtol=1e-8)
