"""Tests for the GPU model and edge server."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.edge.gpu import GpuModel
from repro.edge.server import EdgeServer

fractions = st.floats(min_value=0.0, max_value=1.0)


class TestGpuModel:
    def setup_method(self):
        self.gpu = GpuModel()

    def test_power_cap_endpoints(self):
        assert self.gpu.power_cap_w(0.0) == pytest.approx(100.0)
        assert self.gpu.power_cap_w(1.0) == pytest.approx(280.0)

    def test_speed_factor_one_at_full(self):
        assert self.gpu.speed_factor(1.0) == pytest.approx(1.0)

    def test_speed_factor_monotone(self):
        speeds = [self.gpu.speed_factor(g) for g in (0.0, 0.25, 0.5, 0.75, 1.0)]
        assert all(b > a for a, b in zip(speeds, speeds[1:]))

    def test_inference_time_decreases_with_speed(self):
        slow = self.gpu.inference_time_s(1.0, 0.0)
        fast = self.gpu.inference_time_s(1.0, 1.0)
        assert slow > fast
        assert fast == pytest.approx(self.gpu.base_inference_time_s)

    def test_higher_resolution_eases_inference(self):
        """Fig. 3 bottom: higher-res images ease the GPU's work."""
        low = self.gpu.inference_time_s(0.25, 1.0)
        high = self.gpu.inference_time_s(1.0, 1.0)
        assert low > high

    def test_mean_power_endpoints(self):
        assert self.gpu.mean_power_w(0.0, 1.0) == pytest.approx(
            self.gpu.idle_power_w
        )
        full = self.gpu.mean_power_w(1.0, 1.0)
        assert full == pytest.approx(
            self.gpu.busy_draw_fraction * self.gpu.max_power_cap_w, rel=0.01
        )

    def test_mean_power_monotone_in_cap(self):
        busy_low = self.gpu.mean_power_w(0.5, 0.0)
        busy_high = self.gpu.mean_power_w(0.5, 1.0)
        assert busy_high > busy_low

    def test_validation(self):
        with pytest.raises(ValueError):
            GpuModel(min_power_cap_w=300.0, max_power_cap_w=280.0)
        with pytest.raises(ValueError):
            GpuModel(speed_exponent=0.0)
        with pytest.raises(ValueError):
            GpuModel(busy_draw_fraction=1.5)

    @given(fractions, fractions)
    @settings(max_examples=60, deadline=None)
    def test_property_power_within_physical_bounds(self, util, speed):
        p = self.gpu.mean_power_w(util, speed)
        assert self.gpu.idle_power_w <= p <= self.gpu.max_power_cap_w

    @given(fractions, fractions)
    @settings(max_examples=60, deadline=None)
    def test_property_inference_time_positive(self, resolution, speed):
        assert self.gpu.inference_time_s(resolution, speed) > 0


class TestEdgeServer:
    def setup_method(self):
        self.server = EdgeServer()

    def test_idle_report(self):
        report = self.server.load_report(0.0, 1.0, 1.0)
        assert report.gpu_utilization == 0.0
        assert report.server_power_w == pytest.approx(
            self.server.host_idle_power_w + self.server.gpu.idle_power_w
        )

    def test_utilization_clipped_at_one(self):
        report = self.server.load_report(1e6, 1.0, 1.0)
        assert report.gpu_utilization == 1.0

    def test_power_monotone_in_rate(self):
        low = self.server.load_report(1.0, 1.0, 1.0).server_power_w
        high = self.server.load_report(4.0, 1.0, 1.0).server_power_w
        assert high > low

    def test_lower_resolution_raises_utilization(self):
        """Same rate, lower res -> longer per-image time -> higher util."""
        low_res = self.server.load_report(3.0, 0.25, 1.0)
        high_res = self.server.load_report(3.0, 1.0, 1.0)
        assert low_res.gpu_utilization > high_res.gpu_utilization

    def test_power_in_measured_range(self):
        """Wall power spans roughly the 60-250 W of the measurements."""
        for rate in (0.5, 2.0, 5.0):
            for resolution in (0.25, 1.0):
                for speed in (0.0, 0.5, 1.0):
                    report = self.server.load_report(rate, resolution, speed)
                    assert 50.0 < report.server_power_w < 280.0

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            self.server.load_report(-1.0, 1.0, 1.0)
