"""Tests for the O-RAN message types."""

import pytest

from repro.oran.messages import (
    A1PolicyRequest,
    A1PolicyResponse,
    E2ControlRequest,
    E2Indication,
    E2Subscription,
    O1Report,
    next_message_id,
)


class TestMessageIds:
    def test_monotonically_increasing(self):
        first = next_message_id()
        second = next_message_id()
        assert second > first

    def test_each_message_gets_unique_id(self):
        a = E2ControlRequest(airtime=0.5, max_mcs=10)
        b = E2ControlRequest(airtime=0.5, max_mcs=10)
        assert a.message_id != b.message_id


class TestA1Messages:
    def test_valid_operations(self):
        for op in ("PUT", "GET", "DELETE"):
            A1PolicyRequest(operation=op, policy_type_id=1, policy_id="p")

    def test_invalid_operation(self):
        with pytest.raises(ValueError):
            A1PolicyRequest(operation="PATCH", policy_type_id=1, policy_id="p")

    def test_response_ok_range(self):
        assert A1PolicyResponse(request_id=1, status=200).ok
        assert A1PolicyResponse(request_id=1, status=204).ok
        assert not A1PolicyResponse(request_id=1, status=404).ok
        assert not A1PolicyResponse(request_id=1, status=500).ok

    def test_body_defaults_empty(self):
        request = A1PolicyRequest(
            operation="GET", policy_type_id=1, policy_id="p"
        )
        assert request.body == {}


class TestE2Messages:
    def test_subscription_requires_kpis(self):
        with pytest.raises(ValueError):
            E2Subscription(subscriber="x", kpi_names=())

    def test_subscription_period_positive(self):
        with pytest.raises(ValueError):
            E2Subscription(subscriber="x", kpi_names=("a",), report_period_s=0)

    def test_indication_carries_kpis(self):
        ind = E2Indication(node_id="enb", kpis={"bs_power_w": 5.0}, period=3)
        assert ind.kpis["bs_power_w"] == 5.0
        assert ind.period == 3


class TestO1Messages:
    def test_report_fields(self):
        report = O1Report(source="xapp", kpis={"k": 1.0}, period=1)
        assert report.source == "xapp"
        assert report.kpis == {"k": 1.0}
