"""Tests for the environment, power meter and scenarios."""

import numpy as np
import pytest

from repro.testbed.config import ControlPolicy, TestbedConfig
from repro.testbed.env import EdgeAIEnvironment
from repro.testbed.powermeter import ObservationNoise, PowerMeter
from repro.testbed.scenarios import (
    dynamic_scenario,
    heterogeneous_scenario,
    static_scenario,
)
from repro.ran.channel import constant_trace


class TestPowerMeter:
    def test_zero_noise_exact(self):
        assert PowerMeter(noise_rel=0.0).read(100.0) == 100.0

    def test_noise_magnitude(self):
        meter = PowerMeter(noise_rel=0.05, rng=0)
        readings = [meter.read(100.0) for _ in range(2000)]
        assert abs(np.mean(readings) - 100.0) < 1.0
        assert 3.0 < np.std(readings) < 7.0

    def test_never_negative(self):
        meter = PowerMeter(noise_rel=5.0, rng=0)
        assert all(meter.read(0.1) >= 0 for _ in range(100))

    def test_average_tighter_than_single(self):
        meter = PowerMeter(noise_rel=0.1, rng=1)
        averages = [meter.read_average(100.0, 64) for _ in range(100)]
        singles = [meter.read(100.0) for _ in range(100)]
        assert np.std(averages) < np.std(singles)

    def test_negative_power_rejected(self):
        with pytest.raises(ValueError):
            PowerMeter().read(-1.0)


class TestObservationNoise:
    def test_delay_noise_unbiased(self):
        noise = ObservationNoise(delay_noise_rel=0.05, rng=0)
        samples = [noise.noisy_delay(0.4) for _ in range(3000)]
        assert abs(np.mean(samples) - 0.4) < 0.005

    def test_infinite_delay_passthrough(self):
        noise = ObservationNoise(rng=0)
        assert noise.noisy_delay(float("inf")) == float("inf")

    def test_map_clipping(self):
        noise = ObservationNoise(map_noise_std=0.5, rng=0)
        values = [noise.noisy_map(0.95) for _ in range(200)]
        assert all(0.0 <= v <= 1.0 for v in values)

    def test_map_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            ObservationNoise().noisy_map(1.5)


class TestEnvironment:
    def test_observe_context_matches_users(self, static_env):
        context = static_env.observe_context()
        assert context.n_users == static_env.n_users == 1

    def test_evaluate_noise_free_deterministic(self, static_env, max_policy):
        a = static_env.evaluate(max_policy, snrs_db=[35.0], noisy=False)
        b = static_env.evaluate(max_policy, snrs_db=[35.0], noisy=False)
        assert a.delay_s == b.delay_s
        assert a.server_power_w == b.server_power_w

    def test_noisy_evaluate_varies(self, static_env, max_policy):
        a = static_env.evaluate(max_policy, snrs_db=[35.0], noisy=True)
        b = static_env.evaluate(max_policy, snrs_db=[35.0], noisy=True)
        assert a.delay_s != b.delay_s

    def test_step_advances_channel(self, testbed_config):
        env = dynamic_scenario(config=testbed_config, rng=0)
        before = env.current_snrs_db
        env.step(ControlPolicy.max_resources())
        after = env.current_snrs_db
        assert before != after

    def test_same_seed_same_trajectory(self, testbed_config):
        def run(seed):
            env = static_scenario(rng=seed, config=testbed_config)
            return [
                env.step(ControlPolicy.max_resources()).delay_s
                for _ in range(5)
            ]
        assert run(3) == run(3)
        assert run(3) != run(4)

    def test_detector_mode_produces_plausible_map(self, testbed_config):
        env = static_scenario(rng=0, config=testbed_config, map_mode="detector")
        obs = env.step(ControlPolicy.max_resources())
        assert 0.4 < obs.map_score < 0.85

    def test_invalid_map_mode(self, testbed_config):
        with pytest.raises(ValueError):
            EdgeAIEnvironment([constant_trace(30.0)], map_mode="bogus")

    def test_no_channels_rejected(self):
        with pytest.raises(ValueError):
            EdgeAIEnvironment([])

    def test_too_many_users_rejected(self):
        config = TestbedConfig(max_users=2)
        with pytest.raises(ValueError):
            EdgeAIEnvironment(
                [constant_trace(30.0) for _ in range(3)], config=config
            )

    def test_observation_fields_populated(self, static_env, max_policy):
        obs = static_env.evaluate(max_policy)
        assert obs.delay_s > 0
        assert 0 <= obs.map_score <= 1
        assert obs.server_power_w > 0
        assert obs.bs_power_w > 0
        assert len(obs.per_user_delay_s) == 1


class TestScenarios:
    def test_static_snr_near_mean(self, testbed_config):
        env = static_scenario(mean_snr_db=30.0, rng=0, config=testbed_config)
        assert abs(env.current_snrs_db[0] - 30.0) < 5.0

    def test_heterogeneous_snr_ladder(self, testbed_config):
        env = heterogeneous_scenario(n_users=4, rng=0, config=testbed_config)
        snrs = env.current_snrs_db
        assert len(snrs) == 4
        # Mean SNRs decay by 20% per user; realised samples keep order
        # approximately (allow jitter).
        assert snrs[0] > snrs[-1]

    def test_dynamic_scenario_sweeps(self, testbed_config):
        env = dynamic_scenario(config=testbed_config, rng=0, length=100)
        snrs = []
        for _ in range(100):
            snrs.append(env.current_snrs_db[0])
            env.step(ControlPolicy.max_resources())
        assert max(snrs) - min(snrs) > 20.0

    def test_invalid_user_counts(self):
        with pytest.raises(ValueError):
            static_scenario(n_users=0)
        with pytest.raises(ValueError):
            heterogeneous_scenario(n_users=0)
