"""Tests for EdgeBOL checkpointing."""

import numpy as np
import pytest

from repro.core import EdgeBOL, EdgeBOLConfig
from repro.core.persistence import load_edgebol, save_edgebol
from repro.experiments.runner import run_agent
from repro.testbed.config import (
    CostWeights,
    ServiceConstraints,
    TestbedConfig,
)
from repro.testbed.scenarios import static_scenario


def trained_agent(n_periods=25, decoupled=False, seed=0):
    testbed = TestbedConfig(n_levels=5)
    env = static_scenario(mean_snr_db=35.0, rng=seed, config=testbed)
    agent = EdgeBOL(
        testbed.control_grid(),
        ServiceConstraints(0.4, 0.5),
        CostWeights(1.0, 2.0),
        config=EdgeBOLConfig(decoupled_power_gps=decoupled),
    )
    run_agent(env, agent, n_periods)
    return agent, env


class TestCheckpointRoundtrip:
    def test_problem_definition_restored(self, tmp_path):
        agent, _ = trained_agent()
        path = save_edgebol(agent, tmp_path / "agent.npz")
        restored = load_edgebol(path)
        assert restored.constraints == agent.constraints
        assert restored.cost_weights == agent.cost_weights
        np.testing.assert_array_equal(restored.control_grid, agent.control_grid)

    def test_gp_buffers_restored(self, tmp_path):
        agent, _ = trained_agent()
        restored = load_edgebol(save_edgebol(agent, tmp_path / "a.npz"))
        for original, copy in zip(agent.gps, restored.gps):
            assert copy.n_observations == original.n_observations
            np.testing.assert_allclose(copy.inputs, original.inputs)
            np.testing.assert_allclose(copy.targets, original.targets)
            np.testing.assert_allclose(
                copy.kernel.lengthscales, original.kernel.lengthscales
            )
            assert copy.noise_variance == pytest.approx(original.noise_variance)

    def test_identical_predictions(self, tmp_path):
        agent, env = trained_agent()
        restored = load_edgebol(save_edgebol(agent, tmp_path / "a.npz"))
        context = env.observe_context()
        joint = agent._joint_grid(context)
        for original, copy in zip(agent.gps, restored.gps):
            m1, v1 = original.predict(joint[:50])
            m2, v2 = copy.predict(joint[:50])
            np.testing.assert_allclose(m1, m2, rtol=1e-9)
            np.testing.assert_allclose(v1, v2, rtol=1e-7, atol=1e-12)

    def test_identical_decisions(self, tmp_path):
        agent, env = trained_agent()
        restored = load_edgebol(save_edgebol(agent, tmp_path / "a.npz"))
        context = env.observe_context()
        assert restored.select(context) == agent.select(context)
        assert restored.last_safe_set_size == agent.last_safe_set_size

    def test_decoupled_power_gps_roundtrip(self, tmp_path):
        agent, env = trained_agent(decoupled=True)
        restored = load_edgebol(save_edgebol(agent, tmp_path / "a.npz"))
        assert restored._power_gps is not None
        for original, copy in zip(agent._power_gps, restored._power_gps):
            assert copy.n_observations == original.n_observations
        context = env.observe_context()
        assert restored.select(context) == agent.select(context)

    def test_warm_start_continues_learning(self, tmp_path):
        agent, env = trained_agent(n_periods=40)
        restored = load_edgebol(save_edgebol(agent, tmp_path / "a.npz"))
        log = run_agent(env, restored, 20)
        assert np.all(np.isfinite(log.cost))
        assert restored.n_observations == agent.n_observations + 20

    def test_empty_agent_roundtrip(self, tmp_path):
        testbed = TestbedConfig(n_levels=4)
        agent = EdgeBOL(
            testbed.control_grid(), ServiceConstraints(0.4, 0.5),
            CostWeights(1.0, 1.0),
        )
        restored = load_edgebol(save_edgebol(agent, tmp_path / "empty.npz"))
        assert restored.n_observations == 0

    def test_custom_config_preserved(self, tmp_path):
        testbed = TestbedConfig(n_levels=4)
        config = EdgeBOLConfig(beta=3.0, max_observations=50)
        agent = EdgeBOL(
            testbed.control_grid(), ServiceConstraints(0.4, 0.5),
            CostWeights(1.0, 1.0), config=config,
        )
        restored = load_edgebol(save_edgebol(agent, tmp_path / "c.npz"))
        assert restored.config.beta == 3.0
        assert restored.config.max_observations == 50

    def test_bad_format_rejected(self, tmp_path):
        agent, _ = trained_agent(n_periods=2)
        path = save_edgebol(agent, tmp_path / "a.npz")
        data = dict(np.load(path, allow_pickle=False))
        data["format_version"] = np.array([99])
        np.savez_compressed(path, **data)
        with pytest.raises(ValueError):
            load_edgebol(path)
