"""Tests for the experiment registry, the sweep engine and the CLI shell."""

import json
from types import SimpleNamespace

import pytest

import repro.experiments  # noqa: F401  (populate the spec registry)
from repro.cli import main
from repro.experiments import parallel
from repro.experiments import spec as spec_registry
from repro.experiments.parallel import merge_metrics, run_sweep
from repro.experiments.runner import ConstraintSchedule, band
from repro.experiments.spec import ExperimentSpec, ParamSpec, cell_id
from repro.testbed.config import ServiceConstraints

# -- CLI smoke: every registered spec end-to-end with tiny budgets -------

#: Tiny override per scalar parameter name (CLI string values).
TINY_SCALARS = {
    "periods": "3",
    "levels": "3",
    "repetitions": "2",
    "figure": "4",
}

#: Trimmed sweep-axis values so each smoke run stays a handful of cells.
TINY_SWEEPS = {
    "delta2": ["1"],
    "users": ["2"],
    "studies": ["safeset"],
}

#: Spec-specific scalar overrides (tariff needs >= 2 periods per day).
TINY_PER_SPEC = {
    "tariff": {"periods": "4"},
}


def _tiny_scalar(spec, name):
    return TINY_PER_SPEC.get(spec.name, {}).get(name, TINY_SCALARS.get(name))


def _tiny_argv(spec):
    argv = [spec.name]
    for p in spec.params:
        if p.sweep and p.name in TINY_SWEEPS:
            argv += [f"--{p.name}", *TINY_SWEEPS[p.name]]
        elif _tiny_scalar(spec, p.name) is not None:
            argv += [f"--{p.name}", _tiny_scalar(spec, p.name)]
        elif p.required:
            raise AssertionError(
                f"spec '{spec.name}' has required parameter '{p.name}' with "
                "no tiny override; extend TINY_SCALARS"
            )
    return argv


def _tiny_params(spec):
    overrides = {}
    for p in spec.params:
        if p.sweep and p.name in TINY_SWEEPS:
            overrides[p.name] = p.parse_values(",".join(TINY_SWEEPS[p.name]))
        elif _tiny_scalar(spec, p.name) is not None:
            overrides[p.name] = p.type(_tiny_scalar(spec, p.name))
    return spec.resolve(overrides)


@pytest.mark.parametrize("name", spec_registry.names())
def test_cli_smoke_every_spec(name, tmp_path, capsys):
    """Each registered spec runs end-to-end and writes its artifacts."""
    spec = spec_registry.get(name)
    argv = _tiny_argv(spec) + ["--out", str(tmp_path), "--jobs", "1"]
    assert main(argv) == 0
    for artifact in spec.artifact_names(_tiny_params(spec)):
        assert (tmp_path / artifact).exists(), f"{name} missing {artifact}"
    assert "wrote" in capsys.readouterr().out


def test_cli_list_shows_registry(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in spec_registry.names():
        assert name in out


def test_cli_run_rejects_unknown_spec():
    with pytest.raises(SystemExit):
        main(["run", "nonsense"])


def test_cli_run_rejects_unknown_sweep_key(tmp_path):
    with pytest.raises(SystemExit):
        main([
            "run", "dynamic", "--sweep", "bogus=1,2",
            "--out", str(tmp_path),
        ])


def test_cli_run_requires_required_params():
    with pytest.raises(SystemExit):
        main(["run", "profile"])  # missing --set figure=N


def test_cli_run_with_sweep_and_set(tmp_path, capsys):
    code = main([
        "run", "tariff", "--set", "periods=6", "--set", "levels=3",
        "--out", str(tmp_path), "--jobs", "1",
    ])
    assert code == 0
    assert (tmp_path / "tariff.csv").exists()


# -- determinism: --jobs 1 and --jobs 2 give identical cell results ------


def _static_tiny_params():
    spec = spec_registry.get("static")
    return spec, spec.resolve({"delta2": (1.0, 8.0), "periods": 3, "levels": 3})


def test_jobs_parallel_matches_serial(tmp_path):
    """SeedSequence-tree seeding makes worker count irrelevant."""
    spec, params = _static_tiny_params()
    serial = run_sweep(spec, params, seed=7, jobs=1, out=None)
    parallel_result = run_sweep(spec, params, seed=7, jobs=2, out=None)
    assert [c.cell_id for c in serial.cells] == [
        c.cell_id for c in parallel_result.cells
    ]
    assert serial.rows == parallel_result.rows
    assert len(parallel_result.pids) >= 1


def test_cell_seeds_depend_on_root_seed():
    spec, params = _static_tiny_params()
    a = run_sweep(spec, params, seed=0, jobs=1, out=None)
    b = run_sweep(spec, params, seed=1, jobs=1, out=None)
    assert a.rows != b.rows


# -- manifest checkpoint / resume ----------------------------------------

_CALLS: list = []


def _toy_cell(params, seed):
    _CALLS.append(params["x"])
    rng = seed if hasattr(seed, "generate_state") else None
    draw = int(rng.generate_state(1)[0]) if rng is not None else 0
    return [{"x": params["x"], "draw": draw}]


def _toy_report(rows, params, out):
    return f"{len(rows)} rows"


def _toy_spec():
    return ExperimentSpec(
        name="toy",
        help="synthetic spec for engine tests",
        params=(
            ParamSpec("x", type=int, default=(1, 2, 3), sweep=True),
            ParamSpec("periods", type=int, default=1),
        ),
        run_cell=_toy_cell,
        report=_toy_report,
    )


def test_sweep_resumes_from_manifest(tmp_path):
    spec = _toy_spec()
    params = spec.resolve({})
    _CALLS.clear()
    first = run_sweep(spec, params, seed=3, jobs=1, out=tmp_path)
    assert first.resumed == 0
    assert _CALLS == [1, 2, 3]
    assert first.manifest_path.exists()

    _CALLS.clear()
    second = run_sweep(spec, params, seed=3, jobs=1, out=tmp_path)
    assert second.resumed == 3
    assert _CALLS == []  # nothing re-executed
    assert second.rows == first.rows


def test_interrupted_sweep_runs_only_pending_cells(tmp_path):
    spec = _toy_spec()
    params = spec.resolve({})
    _CALLS.clear()
    first = run_sweep(spec, params, seed=3, jobs=1, out=tmp_path)

    # Simulate an interrupt: keep the header plus the first cell only.
    lines = first.manifest_path.read_text().splitlines()
    first.manifest_path.write_text("\n".join(lines[:2]) + "\n")

    _CALLS.clear()
    second = run_sweep(spec, params, seed=3, jobs=1, out=tmp_path)
    assert second.resumed == 1
    assert _CALLS == [2, 3]
    assert second.rows == first.rows


def test_changed_seed_invalidates_manifest(tmp_path):
    spec = _toy_spec()
    params = spec.resolve({})
    run_sweep(spec, params, seed=3, jobs=1, out=tmp_path)
    _CALLS.clear()
    rerun = run_sweep(spec, params, seed=4, jobs=1, out=tmp_path)
    assert rerun.resumed == 0
    assert _CALLS == [1, 2, 3]


def test_reshaped_sweep_does_not_reuse_stale_seeds(tmp_path):
    """Cells are reused only when their seed-tree node matches.

    ``x=3`` is cell index 2 of the 3-value grid but index 0 of the
    1-value grid, so its SeedSequence spawn key differs and the
    checkpoint must not be reused.
    """
    spec = _toy_spec()
    run_sweep(spec, spec.resolve({}), seed=3, jobs=1, out=tmp_path)
    _CALLS.clear()
    rerun = run_sweep(
        spec, spec.resolve({"x": (3,)}), seed=3, jobs=1, out=tmp_path
    )
    assert rerun.resumed == 0
    assert _CALLS == [3]


def test_manifest_records_carry_spawn_keys(tmp_path):
    spec = _toy_spec()
    result = run_sweep(spec, spec.resolve({}), seed=3, jobs=1, out=tmp_path)
    lines = [json.loads(line)
             for line in result.manifest_path.read_text().splitlines()]
    header, records = lines[0], lines[1:]
    assert header["spec"] == "toy" and header["seed"] == 3
    assert [tuple(r["spawn_key"]) for r in records] == [(0,), (1,), (2,)]


def test_run_sweep_rejects_bad_jobs():
    spec = _toy_spec()
    with pytest.raises(ValueError):
        run_sweep(spec, spec.resolve({}), jobs=0)


# -- spec / registry API -------------------------------------------------


def test_param_parse_values_and_choices():
    p = ParamSpec("delta2", type=float, sweep=True)
    assert p.parse_values("1,8,64") == (1.0, 8.0, 64.0)
    with pytest.raises(ValueError):
        p.parse_values("")
    limited = ParamSpec("figure", type=int, choices=(1, 2, 3))
    with pytest.raises(ValueError):
        limited.parse_values("9")


def test_resolve_validates_names_and_required():
    spec = _toy_spec()
    with pytest.raises(KeyError):
        spec.resolve({"bogus": 1})
    required = ExperimentSpec(
        name="needy", help="", run_cell=_toy_cell, report=_toy_report,
        params=(ParamSpec("figure", type=int, required=True),),
    )
    with pytest.raises(ValueError):
        required.resolve({})


def test_cells_promote_scalar_params_to_axes():
    spec = _toy_spec()
    cells = spec.cells(spec.resolve({}), {"periods": (1, 2)})
    assert len(cells) == 6  # 3 x-values crossed with 2 periods values
    assert cells[0][0] == "x=1/periods=1"
    assert cells[0][1]["periods"] == 1


def test_cell_id_formatting():
    assert cell_id({}) == "all"
    assert cell_id({"delta2": 8.0, "users": 4}) == "delta2=8/users=4"


def test_register_rejects_reserved_names():
    with pytest.raises(ValueError):
        spec_registry.register(ExperimentSpec(
            name="list", help="", params=(),
            run_cell=_toy_cell, report=_toy_report,
        ))


def test_get_unknown_spec_names_known_ones():
    with pytest.raises(KeyError, match="static"):
        spec_registry.get("nope")


def test_merge_metrics_sums_counters_and_histograms():
    snap = {
        "counters": {"periods": 2},
        "gauges": {"snr": 30.0},
        "histograms": {"cost": {
            "buckets": [1.0, 2.0], "counts": [1, 1, 0],
            "count": 2, "sum": 2.5, "min": 0.5, "max": 2.0, "mean": 1.25,
        }},
    }
    merged = merge_metrics([snap, snap, {}])
    assert merged["counters"]["periods"] == 4
    assert merged["gauges"]["snr"] == 30.0
    hist = merged["histograms"]["cost"]
    assert hist["counts"] == [2, 2, 0]
    assert hist["count"] == 4
    assert hist["sum"] == 5.0
    assert hist["mean"] == pytest.approx(1.25)


def test_jsonable_coerces_numpy():
    import numpy as np

    value = {"a": np.float64(1.5), "b": np.arange(2), "c": (np.int32(3),)}
    assert parallel._jsonable(value) == {"a": 1.5, "b": [0, 1], "c": [3]}


# -- satellite regressions: ConstraintSchedule and band() ----------------


def test_schedule_sorts_changes_once():
    lax = ServiceConstraints(0.9, 0.1)
    tight = ServiceConstraints(0.1, 0.9)
    sched = ConstraintSchedule(lax, changes=((20, lax), (10, tight)))
    assert [start for start, _ in sched.changes] == [10, 20]
    assert sched.at(0) == lax
    assert sched.at(10) == tight
    assert sched.at(25) == lax


def test_schedule_rejects_negative_period():
    with pytest.raises(ValueError, match="non-negative"):
        ConstraintSchedule(
            ServiceConstraints(), changes=((-1, ServiceConstraints()),)
        )


def test_schedule_rejects_duplicate_periods():
    with pytest.raises(ValueError, match="duplicate"):
        ConstraintSchedule(
            ServiceConstraints(),
            changes=((5, ServiceConstraints()), (5, ServiceConstraints())),
        )


def test_band_rejects_empty_logs():
    with pytest.raises(ValueError, match="cost"):
        band([], "cost")


def test_band_names_offending_log():
    logs = [SimpleNamespace(cost=[1.0, 2.0]), SimpleNamespace(cost=[1.0])]
    with pytest.raises(ValueError, match="log 1 has 1 periods"):
        band(logs, "cost")


def test_profile_report_handles_zero_rows(tmp_path):
    from repro.experiments.profiling import report_profile

    text = report_profile([], {"figure": 4}, tmp_path)
    assert "no measurement rows" in text
