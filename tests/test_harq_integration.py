"""Integration of the HARQ model with the scheduler abstractions."""

import numpy as np
import pytest

from repro.ran import phy
from repro.ran.harq import HarqModel
from repro.ran.mac import RadioPolicy, RoundRobinScheduler


class TestHarqComposition:
    """The HARQ goodput factor composes with scheduler allocations."""

    def setup_method(self):
        self.harq = HarqModel()
        self.scheduler = RoundRobinScheduler(mac_efficiency=0.21)

    def effective_goodput(self, snr_db, policy):
        alloc = self.scheduler.allocate(policy, [snr_db])[0]
        return alloc.goodput_bps * self.harq.goodput_factor(alloc.mcs, snr_db)

    def test_good_channel_no_penalty(self):
        policy = RadioPolicy(1.0, 20)
        alloc = self.scheduler.allocate(policy, [35.0])[0]
        effective = self.effective_goodput(35.0, policy)
        assert effective == pytest.approx(alloc.goodput_bps, rel=0.02)

    def test_marginal_channel_penalised(self):
        """At an SNR near the MCS threshold the HARQ factor bites."""
        policy = RadioPolicy(1.0, 28)
        alloc = self.scheduler.allocate(policy, [14.0])[0]
        factor = self.harq.goodput_factor(alloc.mcs, 14.0)
        assert factor < 0.999

    def test_cqi_link_adaptation_is_conservative(self):
        """The CQI table picks MCSs whose first-transmission BLER at the
        reporting SNR stays moderate (the 10%-BLER design rule)."""
        from repro.ran.harq import first_transmission_bler

        for snr in np.linspace(2, 35, 12):
            mcs = phy.effective_mcs(phy.MAX_MCS, snr)
            assert first_transmission_bler(mcs, snr) < 0.5

    def test_explicit_link_adaptation_at_least_as_aggressive(self):
        """Maximising HARQ-aware throughput never picks a *lower* MCS
        than it would without retransmissions to fall back on."""
        one_shot = HarqModel(max_transmissions=1)
        with_harq = HarqModel(max_transmissions=4)
        for snr in (5.0, 12.0, 20.0, 30.0):
            assert with_harq.best_mcs(snr) >= one_shot.best_mcs(snr)

    def test_throughput_optimal_mcs_tracks_cqi_mcs(self):
        """The HARQ-optimal MCS stays within a few steps of the CQI
        table's choice across the SNR range."""
        for snr in np.linspace(4, 32, 8):
            cqi_mcs = phy.effective_mcs(phy.MAX_MCS, snr)
            harq_mcs = self.harq.best_mcs(snr)
            assert abs(harq_mcs - cqi_mcs) <= 6

    def test_retransmission_delay_accounting(self):
        """Head-of-line delay in seconds from the subframe RTT."""
        extra_sf = self.harq.mean_hol_delay_subframes(24, 18.0)
        assert extra_sf >= 0.0
        seconds = extra_sf * 1e-3
        assert seconds < 0.1  # bounded by max_transmissions * rtt
