"""Tests for the telemetry subsystem: spans, metrics, export, report."""

import json
import threading

import numpy as np
import pytest

from repro import cli
from repro.telemetry import (
    Counter,
    Gauge,
    Histogram,
    InMemorySink,
    JsonlSink,
    MetricsRegistry,
    NULL_SPAN,
    Span,
    read_jsonl,
)
from repro.telemetry import runtime as telemetry
from repro.telemetry import report


@pytest.fixture(autouse=True)
def clean_runtime():
    """Every test starts and ends with telemetry off and metrics clear."""
    telemetry.disable()
    telemetry.reset_metrics()
    yield
    telemetry.disable()
    telemetry.reset_metrics()


class TestDisabledMode:
    def test_span_returns_null_span(self):
        assert telemetry.span("x") is NULL_SPAN

    def test_null_span_is_falsy_noop(self):
        with telemetry.span("x") as sp:
            assert not sp
            sp.set("key", "value")  # discarded, no error

    def test_metric_helpers_are_noops(self):
        telemetry.inc("c")
        telemetry.observe("h", 0.5)
        telemetry.set_gauge("g", 1.0)
        snap = telemetry.metrics_snapshot()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_disabled_by_default(self):
        assert not telemetry.enabled()


class TestSpans:
    def test_nesting_records_parent_and_depth(self):
        sink = InMemorySink()
        telemetry.enable(sink)
        with telemetry.span("parent") as outer:
            with telemetry.span("child") as inner:
                assert inner.parent_id == outer.span_id
                assert inner.trace_id == outer.span_id
                assert inner.depth == 1
        telemetry.remove_sink(sink)
        names = [r["name"] for r in sink.spans]
        assert names == ["child", "parent"]  # children emitted first

    def test_root_span_is_its_own_trace(self):
        telemetry.enable()
        with telemetry.span("root") as sp:
            assert sp.trace_id == sp.span_id
            assert sp.parent_id is None
            assert sp.depth == 0

    def test_attrs_via_kwargs_and_set(self):
        telemetry.enable()
        with telemetry.span("op", static=1) as sp:
            sp.set("dynamic", 2)
        assert sp.attrs == {"static": 1, "dynamic": 2}

    def test_duration_positive_and_error_attr(self):
        sink = InMemorySink()
        telemetry.enable(sink)
        with pytest.raises(RuntimeError):
            with telemetry.span("fails"):
                raise RuntimeError("boom")
        telemetry.remove_sink(sink)
        (record,) = sink.spans
        assert record["attrs"]["error"] == "RuntimeError"
        assert record["duration_s"] >= 0.0

    def test_current_span_tracks_stack(self):
        telemetry.enable()
        assert telemetry.current_span() is None
        with telemetry.span("a") as a:
            assert telemetry.current_span() is a
            with telemetry.span("b") as b:
                assert telemetry.current_span() is b
            assert telemetry.current_span() is a
        assert telemetry.current_span() is None

    def test_span_requires_name(self):
        with pytest.raises(ValueError):
            Span("")


class TestMetrics:
    def test_counter(self):
        c = Counter("c")
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge(self):
        g = Gauge("g")
        assert np.isnan(g.value)
        g.set(2.5)
        assert g.value == 2.5

    def test_histogram_buckets_and_summary(self):
        h = Histogram("h", upper_bounds=(1.0, 2.0))
        for v in (0.5, 1.0, 1.5, 99.0):
            h.observe(v)
        snap = h.snapshot()
        assert snap["counts"] == [2, 1, 1]  # <=1, <=2, overflow
        assert snap["count"] == 4
        assert snap["min"] == 0.5 and snap["max"] == 99.0
        assert snap["sum"] == pytest.approx(102.0)

    def test_histogram_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            Histogram("h", upper_bounds=())
        with pytest.raises(ValueError):
            Histogram("h", upper_bounds=(2.0, 1.0))

    def test_registry_create_on_first_use(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        reg.counter("a").inc()
        reg.gauge("b").set(1.0)
        reg.histogram("c").observe(0.1)
        snap = reg.snapshot()
        assert snap["counters"] == {"a": 1}
        assert snap["gauges"] == {"b": 1.0}
        assert snap["histograms"]["c"]["count"] == 1
        reg.reset()
        assert reg.snapshot()["counters"] == {}

    def test_runtime_helpers_when_enabled(self):
        telemetry.enable()
        telemetry.inc("runs", 2)
        telemetry.observe("lat_s", 0.01)
        telemetry.set_gauge("size", 7)
        snap = telemetry.metrics_snapshot()
        assert snap["counters"]["runs"] == 2
        assert snap["histograms"]["lat_s"]["count"] == 1
        assert snap["gauges"]["size"] == 7.0


class TestExport:
    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with telemetry.record(path):
            with telemetry.span("outer"):
                with telemetry.span("inner") as sp:
                    sp.set("k", 1)
            telemetry.inc("events")
        spans, metrics = read_jsonl(path)
        assert [s["name"] for s in spans] == ["inner", "outer"]
        assert spans[0]["attrs"] == {"k": 1}
        assert metrics[-1]["counters"] == {"events": 1}
        # Every line is valid standalone JSON.
        for line in path.read_text().splitlines():
            json.loads(line)

    def test_record_restores_prior_state(self):
        assert not telemetry.enabled()
        with telemetry.record(None):
            assert telemetry.enabled()
        assert not telemetry.enabled()

    def test_record_in_memory_sink(self):
        with telemetry.record(None) as sink:
            with telemetry.span("op"):
                pass
        assert isinstance(sink, InMemorySink)
        assert [s["name"] for s in sink.spans] == ["op"]
        assert sink.metrics  # final snapshot appended

    def test_record_reset_flag(self):
        telemetry.enable()
        telemetry.inc("stale")
        with telemetry.record(None) as sink:
            telemetry.inc("fresh")
        assert "stale" not in sink.metrics[-1]["counters"]
        assert sink.metrics[-1]["counters"]["fresh"] == 1

    def test_jsonl_sink_serialises_nonfinite_attrs(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path)
        sink.emit({"type": "span", "id": 1, "parent": None, "trace": 1,
                   "depth": 0, "name": "x", "start_s": 0.0,
                   "duration_s": 0.1, "attrs": {"bad": float("nan")}})
        sink.close()
        spans, _ = read_jsonl(path)
        assert spans[0]["attrs"]["bad"] == "nan"

    def test_read_jsonl_tolerates_blank_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"type": "span", "id": 1, "name": "a"}\n\n')
        spans, metrics = read_jsonl(path)
        assert len(spans) == 1 and metrics == []


class TestReport:
    def _trace(self):
        with telemetry.record(None) as sink:
            for _ in range(3):
                with telemetry.span("select"):
                    with telemetry.span("posterior"):
                        pass
            telemetry.inc("adds", 5)
        return sink

    def test_span_tree_aggregates_by_path(self):
        sink = self._trace()
        text = report.render_span_tree(sink.spans)
        assert "select" in text
        assert "  posterior" in text  # indented child
        assert text.count("select") == 1  # aggregated to one row

    def test_render_report_includes_metrics(self):
        sink = self._trace()
        text = report.render_report(sink.spans, sink.metrics)
        assert "adds" in text and "5" in text

    def test_empty_trace_renders(self):
        assert "no spans" in report.render_span_tree([])
        assert "no snapshot" in report.render_metrics(None)

    def test_render_file(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with telemetry.record(path):
            with telemetry.span("op"):
                pass
        assert "op" in report.render_file(path)

    def test_selftest(self):
        text = report.selftest_report()
        assert "selftest.posterior" in text
        assert "selftest.solves" in text


class TestCli:
    def test_selftest_subcommand(self, capsys):
        assert cli.main(["telemetry-report", "--selftest"]) == 0
        out = capsys.readouterr().out
        assert "telemetry selftest ok" in out

    def test_report_requires_path_or_selftest(self, capsys):
        assert cli.main(["telemetry-report"]) == 2
        assert "selftest" in capsys.readouterr().err

    def test_report_renders_file(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        with telemetry.record(path):
            with telemetry.span("cli.op"):
                pass
        assert cli.main(["telemetry-report", str(path)]) == 0
        assert "cli.op" in capsys.readouterr().out


class TestRunnerIntegration:
    def test_static_run_emits_required_span_edges(self, tmp_path):
        from repro import (
            CostWeights, EdgeBOL, ServiceConstraints, TestbedConfig,
            static_scenario,
        )
        from repro.experiments.runner import run_agent

        config = TestbedConfig(n_levels=3)
        env = static_scenario(mean_snr_db=35.0, rng=0, config=config)
        agent = EdgeBOL(
            config.control_grid(),
            ServiceConstraints(d_max_s=0.4, rho_min=0.5),
            CostWeights(delta1=1.0, delta2=1.0),
        )
        path = tmp_path / "run.jsonl"
        with telemetry.record(path):
            log = run_agent(env, agent, n_periods=4)

        spans, metrics = read_jsonl(path)
        by_id = {s["id"]: s for s in spans}

        def edges():
            for s in spans:
                parent = by_id.get(s.get("parent"))
                if parent is not None:
                    yield (parent["name"], s["name"])

        edge_set = set(edges())
        assert ("edgebol.select", "engine.posterior") in edge_set
        assert ("env.step", "queueing.solve") in edge_set
        assert ("experiment.run", "experiment.period") in edge_set

        # The run log absorbed the metrics snapshot.
        assert log.telemetry is not None
        assert log.telemetry["counters"]["core.gp.add"] > 0
        assert metrics[-1]["counters"]["ran.mac.allocations"] == 4

        # And the report renders it without error.
        assert "engine.posterior" in report.render_file(path)

    def test_run_without_telemetry_stores_nothing(self):
        from repro import (
            CostWeights, EdgeBOL, ServiceConstraints, TestbedConfig,
            static_scenario,
        )
        from repro.experiments.runner import run_agent

        config = TestbedConfig(n_levels=3)
        env = static_scenario(mean_snr_db=35.0, rng=0, config=config)
        agent = EdgeBOL(
            config.control_grid(),
            ServiceConstraints(d_max_s=0.4, rho_min=0.5),
            CostWeights(delta1=1.0, delta2=1.0),
        )
        log = run_agent(env, agent, n_periods=2)
        assert log.telemetry is None


class TestConcurrency:
    def test_thread_local_span_stacks_are_independent(self):
        telemetry.enable()
        seen = {}

        def worker(name):
            with telemetry.span(name) as sp:
                seen[name] = (sp.parent_id, sp.depth)

        with telemetry.span("main.root"):
            t = threading.Thread(target=worker, args=("worker.root",))
            t.start()
            t.join()
        # The worker thread's span must NOT parent under main's span.
        assert seen["worker.root"] == (None, 0)
