"""Tests for the numpy NN framework, including numerical gradient checks."""

import numpy as np
import pytest

from repro.nn import MLP, Adam, Dense, ReLU, SGD, Sigmoid, Tanh, mse_loss


def numerical_gradient(f, param, eps=1e-6):
    """Central-difference gradient of scalar f w.r.t. an array param."""
    grad = np.zeros_like(param)
    it = np.nditer(param, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        original = param[idx]
        param[idx] = original + eps
        plus = f()
        param[idx] = original - eps
        minus = f()
        param[idx] = original
        grad[idx] = (plus - minus) / (2 * eps)
        it.iternext()
    return grad


class TestDense:
    def test_forward_shape(self):
        layer = Dense(3, 5, rng=0)
        out = layer.forward(np.zeros((7, 3)))
        assert out.shape == (7, 5)

    def test_forward_values(self):
        layer = Dense(2, 2, rng=0)
        layer.weight[:] = np.array([[1.0, 0.0], [0.0, 2.0]])
        layer.bias[:] = np.array([0.5, -0.5])
        out = layer.forward(np.array([[1.0, 1.0]]))
        np.testing.assert_allclose(out, [[1.5, 1.5]])

    def test_gradient_check(self):
        rng = np.random.default_rng(0)
        layer = Dense(4, 3, rng=rng)
        x = rng.normal(size=(5, 4))
        target = rng.normal(size=(5, 3))

        def loss():
            return mse_loss(layer.forward(x), target)[0]

        loss_value, grad_out = mse_loss(layer.forward(x), target)
        grad_in = layer.backward(grad_out)
        num_w = numerical_gradient(loss, layer.weight)
        num_b = numerical_gradient(loss, layer.bias)
        np.testing.assert_allclose(layer.grad_weight, num_w, atol=1e-6)
        np.testing.assert_allclose(layer.grad_bias, num_b, atol=1e-6)
        # Input gradient via a wrapper function.
        x_var = x.copy()

        def loss_x():
            return mse_loss(layer.forward(x_var), target)[0]

        num_x = numerical_gradient(loss_x, x_var)
        np.testing.assert_allclose(grad_in, num_x, atol=1e-6)

    def test_backward_before_forward(self):
        with pytest.raises(RuntimeError):
            Dense(2, 2, rng=0).backward(np.zeros((1, 2)))

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            Dense(0, 3)


@pytest.mark.parametrize("activation_cls", [ReLU, Tanh, Sigmoid])
def test_activation_gradient_check(activation_cls):
    rng = np.random.default_rng(1)
    layer = activation_cls()
    x = rng.normal(size=(4, 3)) + 0.1  # avoid ReLU kink at exactly 0
    target = rng.normal(size=(4, 3))
    x_var = x.copy()

    def loss():
        return mse_loss(layer.forward(x_var), target)[0]

    _, grad_out = mse_loss(layer.forward(x_var), target)
    grad_in = layer.backward(grad_out)
    num = numerical_gradient(loss, x_var)
    np.testing.assert_allclose(grad_in, num, atol=1e-5)


class TestSigmoidStability:
    def test_extreme_inputs(self):
        s = Sigmoid()
        out = s.forward(np.array([[-1000.0, 1000.0]]))
        np.testing.assert_allclose(out, [[0.0, 1.0]], atol=1e-12)
        assert np.all(np.isfinite(out))


class TestMLP:
    def test_end_to_end_gradient_check(self):
        rng = np.random.default_rng(2)
        net = MLP([3, 8, 2], hidden_activation="tanh",
                  output_activation="linear", rng=rng)
        x = rng.normal(size=(6, 3))
        target = rng.normal(size=(6, 2))

        def loss():
            return mse_loss(net.forward(x), target)[0]

        _, grad = mse_loss(net.forward(x), target)
        net.backward(grad)
        for param, grad_analytic in zip(net.parameters(), net.gradients()):
            num = numerical_gradient(loss, param)
            np.testing.assert_allclose(grad_analytic, num, atol=1e-5)

    def test_sigmoid_output_range(self):
        net = MLP([2, 4, 3], output_activation="sigmoid", rng=0)
        out = net(np.random.default_rng(0).normal(size=(10, 2)) * 10)
        assert np.all(out > 0) and np.all(out < 1)

    def test_1d_input_promoted(self):
        net = MLP([3, 2], rng=0)
        assert net(np.zeros(3)).shape == (1, 2)

    def test_copy_weights(self):
        a = MLP([2, 4, 1], rng=0)
        b = MLP([2, 4, 1], rng=1)
        b.copy_weights_from(a, tau=1.0)
        for pa, pb in zip(a.parameters(), b.parameters()):
            np.testing.assert_array_equal(pa, pb)

    def test_polyak_average(self):
        a = MLP([2, 2], rng=0)
        b = MLP([2, 2], rng=1)
        before = [p.copy() for p in b.parameters()]
        b.copy_weights_from(a, tau=0.5)
        for pa, pb, pb0 in zip(a.parameters(), b.parameters(), before):
            np.testing.assert_allclose(pb, 0.5 * pa + 0.5 * pb0)

    def test_invalid_architecture(self):
        with pytest.raises(ValueError):
            MLP([3])
        with pytest.raises(ValueError):
            MLP([3, 2], hidden_activation="bogus")

    def test_learns_xor(self):
        """Sanity: the framework can fit a non-linear function."""
        rng = np.random.default_rng(3)
        x = np.array([[0, 0], [0, 1], [1, 0], [1, 1]], dtype=float)
        y = np.array([[0.0], [1.0], [1.0], [0.0]])
        net = MLP([2, 16, 1], hidden_activation="tanh",
                  output_activation="sigmoid", rng=rng)
        optim = Adam(net.parameters(), learning_rate=0.05)
        for _ in range(500):
            pred = net(x)
            _, grad = mse_loss(pred, y)
            net.backward(grad)
            optim.step(net.gradients())
        final = net(x)
        assert np.all(np.abs(final - y) < 0.2)


class TestOptimisers:
    def test_sgd_descends_quadratic(self):
        param = np.array([5.0])
        opt = SGD([param], learning_rate=0.1)
        for _ in range(100):
            opt.step([2 * param])  # grad of x^2
        assert abs(param[0]) < 1e-3

    def test_sgd_momentum_accelerates(self):
        def run(momentum):
            p = np.array([5.0])
            opt = SGD([p], learning_rate=0.01, momentum=momentum)
            for _ in range(50):
                opt.step([2 * p])
            return abs(p[0])
        assert run(0.9) < run(0.0)

    def test_adam_descends(self):
        param = np.array([3.0, -4.0])
        opt = Adam([param], learning_rate=0.1)
        for _ in range(300):
            opt.step([2 * param])
        assert np.all(np.abs(param) < 1e-2)

    def test_gradient_count_mismatch(self):
        opt = Adam([np.zeros(2)])
        with pytest.raises(ValueError):
            opt.step([np.zeros(2), np.zeros(2)])

    def test_invalid_learning_rate(self):
        with pytest.raises(ValueError):
            Adam([np.zeros(1)], learning_rate=0.0)


class TestMseLoss:
    def test_value(self):
        loss, _ = mse_loss(np.array([[1.0, 2.0]]), np.array([[0.0, 0.0]]))
        assert loss == pytest.approx(2.5)

    def test_gradient(self):
        pred = np.array([[1.0, 2.0]])
        _, grad = mse_loss(pred, np.zeros((1, 2)))
        np.testing.assert_allclose(grad, [[1.0, 2.0]])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            mse_loss(np.zeros((2, 1)), np.zeros((1, 2)))
