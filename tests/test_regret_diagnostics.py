"""Tests for the regret curves and GP calibration diagnostics."""

import numpy as np
import pytest

from repro.bandit.oracle import ExhaustiveOracle
from repro.core import EdgeBOL
from repro.core.diagnostics import (
    calibration_report,
    expected_coverage,
    interval_coverage,
    standardised_errors,
)
from repro.core.gp import GaussianProcess
from repro.core.kernels import Matern
from repro.experiments.recorder import RunLog
from repro.experiments.regret import (
    regret_against_constant_oracle,
    regret_for_static_run,
)
from repro.experiments.runner import run_agent
from repro.testbed.config import (
    ControlPolicy,
    CostWeights,
    ServiceConstraints,
    TestbedConfig,
)
from repro.testbed.env import TestbedObservation
from repro.testbed.scenarios import static_scenario


def make_log(costs, delays=None, d_max=0.4):
    log = RunLog()
    delays = delays if delays is not None else [0.3] * len(costs)
    for cost, delay in zip(costs, delays):
        log.append(
            cost=cost,
            policy=ControlPolicy.max_resources(),
            observation=TestbedObservation(
                delay_s=delay, map_score=0.6, server_power_w=cost,
                bs_power_w=0.0, gpu_delay_s=0.1, gpu_utilization=0.3,
                total_rate_hz=3.0, mean_mcs=20.0, offered_load_bps=1e6,
                per_user_delay_s=(delay,), per_user_rate_hz=(3.0,),
            ),
            d_max_s=d_max,
            rho_min=0.5,
        )
    return log


class TestRegretCurves:
    def test_per_period_clipping(self):
        log = make_log([90.0, 110.0, 100.0])
        curves = regret_against_constant_oracle(log, oracle_cost=100.0)
        np.testing.assert_allclose(curves.per_period, [0.0, 10.0, 0.0])

    def test_cumulative_monotone(self):
        log = make_log([110.0, 105.0, 120.0, 100.0])
        curves = regret_against_constant_oracle(log, 100.0)
        assert np.all(np.diff(curves.cumulative) >= 0)
        assert curves.final_cumulative == pytest.approx(35.0)

    def test_average_definition(self):
        log = make_log([110.0, 130.0])
        curves = regret_against_constant_oracle(log, 100.0)
        np.testing.assert_allclose(curves.average, [10.0, 20.0])

    def test_safety_regret_counts_violations(self):
        log = make_log([100.0] * 3, delays=[0.3, 0.5, 0.45], d_max=0.4)
        curves = regret_against_constant_oracle(log, 100.0)
        assert curves.safety_cumulative[-1] == pytest.approx(0.15, abs=1e-9)

    def test_infinite_delay_penalised(self):
        log = make_log([100.0], delays=[float("inf")], d_max=0.4)
        curves = regret_against_constant_oracle(log, 100.0)
        assert curves.safety_cumulative[-1] == pytest.approx(2.0)

    def test_sublinear_detection(self):
        improving = make_log([150.0] * 20 + [101.0] * 20)
        flat = make_log([150.0] * 40)
        assert regret_against_constant_oracle(improving, 100.0).is_sublinear()
        assert not regret_against_constant_oracle(flat, 100.0).is_sublinear()

    def test_edgebol_regret_is_sublinear(self):
        """The learner's regret decays over a static run."""
        testbed = TestbedConfig(n_levels=7)
        env = static_scenario(mean_snr_db=35.0, rng=0, config=testbed)
        agent = EdgeBOL(
            testbed.control_grid(), ServiceConstraints(0.4, 0.5),
            CostWeights(1.0, 1.0),
        )
        log = run_agent(env, agent, 80)
        oracle_env = static_scenario(mean_snr_db=35.0, rng=1, config=testbed)
        oracle = ExhaustiveOracle(oracle_env, CostWeights(1.0, 1.0))
        curves = regret_for_static_run(
            log, oracle, ServiceConstraints(0.4, 0.5), snrs_db=[35.0]
        )
        assert curves.is_sublinear()
        # Safe learning: tiny cumulative safety regret.
        assert curves.safety_cumulative[-1] < 1.0


class TestCalibrationDiagnostics:
    def fitted_gp(self, noise=0.05, n=120, rng_seed=0):
        rng = np.random.default_rng(rng_seed)
        x = rng.uniform(0, 1, size=(n, 1))
        y = np.sin(6 * x[:, 0]) + rng.normal(0, noise, size=n)
        gp = GaussianProcess(
            Matern(lengthscales=[0.3], output_scale=1.0),
            noise_variance=noise**2,
        )
        gp.fit(x[: n // 2], y[: n // 2])
        return gp, x[n // 2:], y[n // 2:]

    def test_calibrated_model_covers(self):
        gp, x_test, y_test = self.fitted_gp()
        coverage = interval_coverage(gp, x_test, y_test, z=2.0)
        assert coverage > 0.85

    def test_overconfident_model_undercovers(self):
        rng = np.random.default_rng(1)
        x = rng.uniform(0, 1, size=(60, 1))
        y = np.sin(6 * x[:, 0]) + rng.normal(0, 0.3, size=60)
        overconfident = GaussianProcess(
            Matern(lengthscales=[0.3], output_scale=1.0),
            noise_variance=1e-6,   # claims near-noiseless observations
        )
        overconfident.fit(x[:30], y[:30])
        coverage = interval_coverage(overconfident, x[30:], y[30:], z=2.0)
        assert coverage < 0.85

    def test_standardised_errors_moments(self):
        gp, x_test, y_test = self.fitted_gp(n=400)
        errors = standardised_errors(gp, x_test, y_test)
        assert abs(errors.mean()) < 0.3
        assert 0.6 < errors.std() < 1.6

    def test_expected_coverage_values(self):
        assert expected_coverage(1.96) == pytest.approx(0.95, abs=0.001)
        assert expected_coverage(1.0) == pytest.approx(0.6827, abs=0.001)

    def test_report_fields(self):
        gp, x_test, y_test = self.fitted_gp()
        report = calibration_report(gp, x_test, y_test)
        assert set(report) == {
            "n", "coverage", "expected_coverage", "z", "error_mean",
            "error_std", "mean_interval_width",
        }
        assert report["n"] == len(y_test)
        assert report["mean_interval_width"] > 0

    def test_shape_validation(self):
        gp, x_test, y_test = self.fitted_gp()
        with pytest.raises(ValueError):
            standardised_errors(gp, x_test, y_test[:-1])
        with pytest.raises(ValueError):
            interval_coverage(gp, x_test, y_test, z=0.0)

    def test_edgebol_delay_gp_reasonably_calibrated(self):
        """The deployed delay surrogate's intervals cover held-out
        observations of the real environment."""
        testbed = TestbedConfig(n_levels=7)
        env = static_scenario(mean_snr_db=35.0, rng=5, config=testbed)
        agent = EdgeBOL(
            testbed.control_grid(), ServiceConstraints(0.4, 0.5),
            CostWeights(1.0, 1.0),
        )
        log = run_agent(env, agent, 60)
        # Held-out probes around the visited region.
        xs, ys = [], []
        for _ in range(30):
            context = env.observe_context()
            policy = agent.select(context)
            obs = env.step(policy)
            xs.append(agent._joint_point(context, policy))
            ys.append(min(obs.delay_s, 1.5))
        coverage = interval_coverage(
            agent.gps[1], np.array(xs), np.array(ys), z=2.5
        )
        assert coverage > 0.7
        del log
