"""Tests for background-traffic generators and dataset persistence."""

import numpy as np
import pytest

from repro.core import EdgeBOL
from repro.experiments.hyperfit import collect_profiling_data
from repro.ran.traffic import DiurnalTraffic, OnOffTraffic, PoissonTraffic
from repro.service.dataset_io import (
    load_profiling_dataset,
    save_profiling_dataset,
)
from repro.testbed.config import (
    CostWeights,
    ServiceConstraints,
    TestbedConfig,
)
from repro.testbed.scenarios import static_scenario


class TestPoissonTraffic:
    def test_mean_matches(self):
        source = PoissonTraffic(mean_multiplier=10.0, mean_flows=20.0, rng=0)
        samples = [source.step() for _ in range(3000)]
        assert np.mean(samples) == pytest.approx(10.0, rel=0.05)

    def test_non_negative(self):
        source = PoissonTraffic(mean_multiplier=2.0, mean_flows=1.0, rng=0)
        assert all(source.step() >= 0 for _ in range(100))

    def test_validation(self):
        with pytest.raises(ValueError):
            PoissonTraffic(mean_multiplier=0.0)


class TestOnOffTraffic:
    def test_two_levels_only(self):
        source = OnOffTraffic(on_multiplier=10.0, off_multiplier=1.0, rng=0)
        values = {source.step() for _ in range(200)}
        assert values <= {1.0, 10.0}

    def test_stationary_fraction(self):
        source = OnOffTraffic(
            p_on_to_off=0.2, p_off_to_on=0.2, rng=1, on_multiplier=10.0,
        )
        samples = [source.step() for _ in range(8000)]
        on_fraction = np.mean([s == 10.0 for s in samples])
        assert on_fraction == pytest.approx(
            source.stationary_on_probability(), abs=0.05
        )

    def test_bursts_are_correlated(self):
        source = OnOffTraffic(p_on_to_off=0.05, p_off_to_on=0.05, rng=2)
        samples = np.array([source.step() for _ in range(4000)])
        on = (samples == source.on_multiplier).astype(float)
        autocorr = np.corrcoef(on[:-1], on[1:])[0, 1]
        assert autocorr > 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            OnOffTraffic(on_multiplier=1.0, off_multiplier=2.0)
        with pytest.raises(ValueError):
            OnOffTraffic(p_on_to_off=0.0)


class TestDiurnalTraffic:
    def test_cycle_shape(self):
        source = DiurnalTraffic(
            base_multiplier=1.0, peak_multiplier=9.0,
            periods_per_day=40, noise_rel=0.0, rng=0,
        )
        values = [source.step() for _ in range(40)]
        assert values[0] == pytest.approx(1.0)
        assert max(values) == pytest.approx(9.0, rel=0.01)
        assert np.argmax(values) == pytest.approx(20, abs=1)

    def test_noise_keeps_positive(self):
        source = DiurnalTraffic(noise_rel=0.5, rng=1)
        assert all(source.step() > 0 for _ in range(300))

    def test_validation(self):
        with pytest.raises(ValueError):
            DiurnalTraffic(base_multiplier=5.0, peak_multiplier=4.0)


class TestDatasetIO:
    def make_dataset(self, n=10):
        testbed = TestbedConfig(n_levels=5)
        env = static_scenario(mean_snr_db=35.0, rng=0, config=testbed)
        agent = EdgeBOL(
            testbed.control_grid(), ServiceConstraints(0.4, 0.5),
            CostWeights(1.0, 1.0),
        )
        return collect_profiling_data(env, agent, n, rng=0)

    def test_roundtrip(self, tmp_path):
        dataset = self.make_dataset()
        path = save_profiling_dataset(dataset, tmp_path / "profiling.csv")
        loaded = load_profiling_dataset(path)
        np.testing.assert_allclose(loaded.inputs, dataset.inputs)
        np.testing.assert_allclose(loaded.costs, dataset.costs)
        np.testing.assert_allclose(loaded.delays, dataset.delays)
        np.testing.assert_allclose(loaded.maps, dataset.maps)

    def test_creates_directories(self, tmp_path):
        dataset = self.make_dataset(3)
        path = save_profiling_dataset(dataset, tmp_path / "a" / "b" / "d.csv")
        assert path.exists()

    def test_rejects_bad_header(self, tmp_path):
        bad = tmp_path / "bad.csv"
        bad.write_text("x,y\n1,2\n")
        with pytest.raises(ValueError):
            load_profiling_dataset(bad)

    def test_rejects_empty(self, tmp_path):
        dataset = self.make_dataset(2)
        path = save_profiling_dataset(dataset, tmp_path / "d.csv")
        # Truncate to header only.
        lines = path.read_text().splitlines()
        path.write_text(lines[0] + "\n")
        with pytest.raises(ValueError):
            load_profiling_dataset(path)

    def test_rejects_ragged_rows(self, tmp_path):
        dataset = self.make_dataset(2)
        path = save_profiling_dataset(dataset, tmp_path / "d.csv")
        with path.open("a") as handle:
            handle.write("1.0,2.0\n")
        with pytest.raises(ValueError):
            load_profiling_dataset(path)
