"""Tests for the experiment harness (runner, recorder, profiling)."""

import numpy as np
import pytest

from repro.core import EdgeBOL
from repro.experiments import (
    ConstraintSchedule,
    RunLog,
    render_runlog,
    run_agent,
    run_repetitions,
    write_csv,
)
from repro.experiments import profiling
from repro.experiments.convergence import (
    ConvergenceSetting,
    convergence_time,
    run_convergence,
)
from repro.experiments.runner import band
from repro.testbed.config import (
    ControlPolicy,
    CostWeights,
    ServiceConstraints,
    TestbedConfig,
)
from repro.testbed.env import TestbedObservation
from repro.testbed.scenarios import static_scenario


def observation(delay=0.3, map_score=0.6):
    return TestbedObservation(
        delay_s=delay, map_score=map_score, server_power_w=100.0,
        bs_power_w=5.0, gpu_delay_s=0.1, gpu_utilization=0.3,
        total_rate_hz=3.0, mean_mcs=20.0, offered_load_bps=1e6,
        per_user_delay_s=(delay,), per_user_rate_hz=(3.0,),
    )


class TestRunLog:
    def make_log(self, n=10):
        log = RunLog()
        for i in range(n):
            log.append(
                cost=100.0 - i,
                policy=ControlPolicy.max_resources(),
                observation=observation(),
                d_max_s=0.4,
                rho_min=0.5,
            )
        return log

    def test_append_and_len(self):
        assert len(self.make_log(7)) == 7

    def test_tail_mean(self):
        log = self.make_log(10)
        assert log.tail_mean("cost", window=3) == pytest.approx(
            np.mean([93.0, 92.0, 91.0])
        )

    def test_tail_mean_empty(self):
        assert np.isnan(RunLog().tail_mean("cost"))

    def test_violation_rates(self):
        log = RunLog()
        for delay in (0.3, 0.5, 0.3, 0.5):
            log.append(
                cost=1.0, policy=ControlPolicy.max_resources(),
                observation=observation(delay=delay),
                d_max_s=0.4, rho_min=0.5,
            )
        dv, mv = log.violation_rates()
        assert dv == pytest.approx(0.5)
        assert mv == 0.0

    def test_as_dict_aligned(self):
        log = self.make_log(4)
        data = log.as_dict()
        assert all(len(v) == 4 for v in data.values())

    def test_render(self):
        text = render_runlog(self.make_log(), title="demo")
        assert "demo" in text and "tail mean cost" in text


class TestWriteCsv(object):
    def test_row_dicts(self, tmp_path):
        path = write_csv(tmp_path / "out.csv", [{"a": 1, "b": 2}, {"a": 3, "b": 4}])
        content = path.read_text().strip().splitlines()
        assert content[0] == "a,b"
        assert content[1] == "1,2"

    def test_column_mapping(self, tmp_path):
        path = write_csv(tmp_path / "sub" / "out.csv", {"x": [1, 2], "y": [3, 4]})
        assert path.exists()
        assert "x,y" in path.read_text()


class TestConstraintSchedule:
    def test_piecewise(self):
        schedule = ConstraintSchedule(
            initial=ServiceConstraints(0.5, 0.4),
            changes=(
                (10, ServiceConstraints(0.4, 0.6)),
                (20, ServiceConstraints(0.5, 0.5)),
            ),
        )
        assert schedule.at(0).d_max_s == 0.5
        assert schedule.at(10).rho_min == 0.6
        assert schedule.at(25).rho_min == 0.5


class TestRunner:
    def make_env_agent(self, seed=0, n_levels=5):
        testbed = TestbedConfig(n_levels=n_levels)
        env = static_scenario(mean_snr_db=35.0, rng=seed, config=testbed)
        agent = EdgeBOL(
            testbed.control_grid(),
            ServiceConstraints(0.4, 0.5),
            CostWeights(1.0, 1.0),
        )
        return env, agent

    def test_run_agent_length(self):
        env, agent = self.make_env_agent()
        log = run_agent(env, agent, 12)
        assert len(log) == 12

    def test_schedule_applied(self):
        env, agent = self.make_env_agent()
        schedule = ConstraintSchedule(
            initial=ServiceConstraints(0.4, 0.5),
            changes=((5, ServiceConstraints(0.6, 0.3)),),
        )
        log = run_agent(env, agent, 10, schedule=schedule)
        assert log.d_max_s[0] == 0.4
        assert log.d_max_s[9] == 0.6
        assert agent.constraints.d_max_s == 0.6

    def test_track_safe_set(self):
        env, agent = self.make_env_agent()
        log = run_agent(env, agent, 5, track_safe_set=True)
        assert all(s >= 1 for s in log.safe_set_size)

    def test_run_repetitions(self):
        logs = run_repetitions(
            lambda seed: self.make_env_agent(seed),
            n_repetitions=3,
            n_periods=5,
        )
        assert len(logs) == 3
        # Different seeds -> different noise trajectories.
        assert logs[0].cost != logs[1].cost

    def test_band(self):
        logs = run_repetitions(
            lambda seed: self.make_env_agent(seed),
            n_repetitions=3, n_periods=5,
        )
        median, low, high = band(logs, "cost")
        assert median.shape == (5,)
        assert np.all(low <= high)


class TestProfilingExperiments:
    @pytest.fixture(scope="class")
    def env(self):
        return static_scenario(mean_snr_db=35.0, rng=0)

    def test_fig1_rows(self, env):
        rows = profiling.fig1_precision_vs_delay(env, dots_per_point=2)
        assert len(rows) == 8
        assert {"resolution", "delay_ms", "map"} <= set(rows[0])

    def test_fig1_tradeoff_shape(self, env):
        rows = profiling.fig1_precision_vs_delay(env, dots_per_point=4)
        by_res = {}
        for row in rows:
            by_res.setdefault(row["resolution"], []).append(row)
        mean_map = {r: np.mean([x["map"] for x in v]) for r, v in by_res.items()}
        mean_delay = {r: np.mean([x["delay_ms"] for x in v]) for r, v in by_res.items()}
        assert mean_map[1.0] > mean_map[0.25]
        assert mean_delay[1.0] > mean_delay[0.25]

    def test_fig2_airtime_effect(self, env):
        rows = profiling.fig2_delay_vs_server_power(
            env, airtimes=(0.2, 1.0), resolutions=(1.0,), dots_per_point=3
        )
        low = np.mean([r["delay_ms"] for r in rows if r["airtime"] == 0.2])
        high = np.mean([r["delay_ms"] for r in rows if r["airtime"] == 1.0])
        assert low > high

    def test_fig3_gpu_effect(self, env):
        rows = profiling.fig3_gpu_policies(
            env, gpu_speeds=(0.1, 1.0), resolutions=(0.5,), dots_per_point=3
        )
        slow = np.mean([r["gpu_delay_ms"] for r in rows if r["gpu_speed"] == 0.1])
        fast = np.mean([r["gpu_delay_ms"] for r in rows if r["gpu_speed"] == 1.0])
        assert slow > fast

    def test_fig5_mcs_effect(self, env):
        rows = profiling.fig5_bs_power_vs_mcs(
            env, airtimes=(1.0,), resolutions=(1.0,),
            mcs_levels=(0.2, 1.0), dots_per_point=3,
        )
        low_mcs = np.mean([r["bs_power_w"] for r in rows if r["mcs_policy"] == 0.2])
        high_mcs = np.mean([r["bs_power_w"] for r in rows if r["mcs_policy"] == 1.0])
        assert low_mcs > high_mcs

    def test_fig6_regime_flip(self):
        rows = profiling.fig6_bs_power_vs_mcs_10x(
            airtimes=(1.0,), resolutions=(1.0,),
            mcs_levels=(0.5, 1.0), dots_per_point=3,
        )
        low_mcs = np.mean([r["bs_power_w"] for r in rows if r["mcs_policy"] == 0.5])
        high_mcs = np.mean([r["bs_power_w"] for r in rows if r["mcs_policy"] == 1.0])
        assert high_mcs > low_mcs

    def test_summarize_renders(self, env):
        rows = profiling.fig1_precision_vs_delay(env, dots_per_point=2)
        text = profiling.summarize(rows, ["resolution"], ["map", "delay_ms"])
        assert "mean_map" in text


class TestConvergenceHelpers:
    def test_run_convergence_short(self):
        setting = ConvergenceSetting(n_periods=20, n_repetitions=1, n_levels=5)
        log = run_convergence(1.0, setting=setting, seed=0)
        assert len(log) == 20

    def test_convergence_time_detects_flat(self):
        log = RunLog()
        for i in range(50):
            cost = 200.0 if i < 10 else 100.0
            log.append(
                cost=cost, policy=ControlPolicy.max_resources(),
                observation=observation(), d_max_s=0.4, rho_min=0.5,
            )
        t = convergence_time(log, tolerance=0.05)
        assert 5 <= t <= 12
