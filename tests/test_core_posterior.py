"""Tests for the incremental multi-head posterior engine.

Covers the tentpole invariants: engine posteriors match direct
``GaussianProcess.predict`` within 1e-8 through any mix of ``add``,
eviction, ``set_prior_mean``, ``fit`` and hyperparameter changes; the
GP consistency invariant (incremental state equals a fresh ``fit`` on
the retained data) parametrised over the direct and the engine path;
cache/invalidation behaviour; and the batch/stat APIs.
"""

import numpy as np
import pytest

from repro.core.gp import GaussianProcess
from repro.core.kernels import Matern
from repro.core.posterior import PosteriorBatch, SurrogateEngine

CONTEXT_DIM = 3
CONTROL_DIM = 4
TOL = 1e-8


def make_grid(rng, n_points=60):
    return rng.random((n_points, CONTROL_DIM))


def make_gp(output_scale=4.0, prior_mean=0.0, **kwargs):
    kernel = Matern(
        lengthscales=np.full(CONTEXT_DIM + CONTROL_DIM, 0.7),
        output_scale=output_scale,
    )
    return GaussianProcess(kernel, noise_variance=0.01,
                           prior_mean=prior_mean, **kwargs)


def make_engine(grid, heads=None, **kwargs):
    if heads is None:
        heads = {
            "cost": make_gp(output_scale=4.0),
            "delay": make_gp(output_scale=0.02, prior_mean=0.8),
            "map": make_gp(output_scale=0.02),
        }
    return SurrogateEngine(heads, grid, context_dim=CONTEXT_DIM, **kwargs), heads


def assert_matches_direct(engine, heads, context, tol=TOL):
    batch = engine.posterior(context)
    joint = engine.joint_grid(context)
    for name, gp in heads.items():
        mean, var = gp.predict(joint)
        np.testing.assert_allclose(batch.mean(name), mean, atol=tol, rtol=0)
        np.testing.assert_allclose(batch.variance(name), var, atol=tol, rtol=0)
        d_mean, d_std = gp.predict_std(joint)
        np.testing.assert_allclose(batch.moments(name)[1], d_std,
                                   atol=tol, rtol=0)
        del d_mean


class TestEngineMatchesDirectPredict:
    def test_empty_heads_return_prior(self):
        rng = np.random.default_rng(0)
        engine, heads = make_engine(make_grid(rng))
        assert_matches_direct(engine, heads, rng.random(CONTEXT_DIM))

    def test_incremental_adds(self):
        rng = np.random.default_rng(1)
        grid = make_grid(rng)
        engine, heads = make_engine(grid)
        contexts = [rng.random(CONTEXT_DIM) for _ in range(3)]
        for t in range(40):
            z = np.concatenate([contexts[t % 3], grid[t % grid.shape[0]]])
            for gp in heads.values():
                gp.add(z, float(rng.normal()))
            assert_matches_direct(engine, heads, contexts[t % 3])

    def test_mixed_mutations(self):
        """add / evict / set_prior_mean / fit / kernel swap, all exact."""
        rng = np.random.default_rng(2)
        grid = make_grid(rng)
        heads = {
            "cost": make_gp(max_observations=15, eviction_block=5),
            "delay": make_gp(output_scale=0.02, prior_mean=0.8),
        }
        engine, _ = make_engine(grid, heads=heads)
        context = rng.random(CONTEXT_DIM)
        for t in range(50):
            z = np.concatenate([rng.random(CONTEXT_DIM), grid[t % 60]])
            for gp in heads.values():
                gp.add(z, float(rng.normal()))
            if t == 20:
                heads["delay"].set_prior_mean(1.5)
            if t == 30:
                gp = heads["cost"]
                gp.kernel = Matern(
                    lengthscales=np.full(CONTEXT_DIM + CONTROL_DIM, 0.9),
                    output_scale=5.0,
                )
                gp.fit(gp.inputs, gp.targets)
            if t == 40:
                heads["delay"].fit(
                    heads["delay"].inputs[:10], heads["delay"].targets[:10]
                )
            assert_matches_direct(engine, heads, context)

    def test_seeded_run_150_periods(self):
        """The acceptance check: a seeded 150-period run stays within 1e-8."""
        rng = np.random.default_rng(3)
        grid = make_grid(rng, n_points=80)
        engine, heads = make_engine(grid)
        contexts = [rng.random(CONTEXT_DIM) for _ in range(4)]
        worst = 0.0
        for t in range(150):
            context = contexts[t % 4]
            batch = engine.posterior(context)
            joint = engine.joint_grid(context)
            for name, gp in heads.items():
                mean, var = gp.predict(joint)
                worst = max(
                    worst,
                    float(np.abs(batch.mean(name) - mean).max()),
                    float(np.abs(batch.variance(name) - var).max()),
                )
            z = np.concatenate([context, grid[t % 80]])
            for gp in heads.values():
                gp.add(z, float(rng.normal()))
        assert worst <= TOL


@pytest.mark.parametrize("path", ["direct", "engine"])
class TestConsistencyInvariants:
    """After add/evict/set_prior_mean the posterior equals a fresh fit."""

    def _posterior(self, path, gp, grid, context):
        if path == "direct":
            joint = np.hstack([
                np.tile(context, (grid.shape[0], 1)), grid
            ])
            return gp.predict(joint)
        engine = SurrogateEngine({"head": gp}, grid,
                                 context_dim=CONTEXT_DIM)
        # Query twice so the second pass exercises the cached state.
        engine.posterior(context)
        batch = engine.posterior(context)
        return batch.mean("head"), batch.variance("head")

    def test_matches_fresh_fit(self, path):
        rng = np.random.default_rng(4)
        grid = make_grid(rng)
        gp = make_gp(max_observations=20, eviction_block=5)
        context = rng.random(CONTEXT_DIM)
        for t in range(45):
            z = np.concatenate([rng.random(CONTEXT_DIM), grid[t % 60]])
            gp.add(z, float(rng.normal()))
            if t == 25:
                gp.set_prior_mean(0.3)
        assert gp.n_observations <= 25  # eviction really happened
        fresh = GaussianProcess(gp.kernel, noise_variance=gp.noise_variance,
                                prior_mean=gp.prior_mean)
        fresh.fit(gp.inputs, gp.targets)
        mean, var = self._posterior(path, gp, grid, context)
        ref_mean, ref_var = self._posterior("direct", fresh, grid, context)
        np.testing.assert_allclose(mean, ref_mean, atol=TOL, rtol=0)
        np.testing.assert_allclose(var, ref_var, atol=TOL, rtol=0)

    def test_incremental_add_matches_fresh_fit(self, path):
        rng = np.random.default_rng(5)
        grid = make_grid(rng)
        gp = make_gp()
        x = rng.random((12, CONTEXT_DIM + CONTROL_DIM))
        y = rng.normal(size=12)
        for row, target in zip(x, y):
            gp.add(row, float(target))
        fresh = make_gp()
        fresh.fit(x, y)
        context = rng.random(CONTEXT_DIM)
        mean, var = self._posterior(path, gp, grid, context)
        ref_mean, ref_var = self._posterior("direct", fresh, grid, context)
        np.testing.assert_allclose(mean, ref_mean, atol=TOL, rtol=0)
        np.testing.assert_allclose(var, ref_var, atol=TOL, rtol=0)


class TestCacheBehaviour:
    def test_extension_not_rebuild_on_add(self):
        rng = np.random.default_rng(6)
        grid = make_grid(rng)
        engine, heads = make_engine(grid)
        context = rng.random(CONTEXT_DIM)
        gp = heads["cost"]
        gp.add(np.concatenate([context, grid[0]]), 1.0)
        engine.posterior(context)
        rebuilds = engine.stats.rebuilds
        gp.add(np.concatenate([context, grid[1]]), 2.0)
        engine.posterior(context)
        assert engine.stats.rebuilds == rebuilds
        assert engine.stats.extensions >= 1

    def test_pure_cache_hit_costs_no_kernel_evals(self):
        rng = np.random.default_rng(7)
        grid = make_grid(rng)
        engine, heads = make_engine(grid)
        context = rng.random(CONTEXT_DIM)
        heads["cost"].add(np.concatenate([context, grid[0]]), 1.0)
        engine.posterior(context)
        evals = engine.stats.kernel_evals
        engine.posterior(context)
        assert engine.stats.kernel_evals == evals
        assert engine.stats.cache_hits >= 1

    def test_repeat_context_workload_accumulates_cache_hits(self):
        """Benchmark-shaped loop: add-then-query never hits, re-query does.

        Regression for the committed ``BENCH_posterior.json`` showing
        ``cache_hits: 0``: the counter was fine — the benchmark added
        an observation to every head before each timed query, so every
        query legitimately took the extension path.  A same-context
        re-query with no new data must count one hit per head.
        """
        rng = np.random.default_rng(11)
        grid = make_grid(rng)
        engine, heads = make_engine(grid)
        context = rng.random(CONTEXT_DIM)
        engine.posterior(context)  # first-contact rebuilds, no hits yet
        assert engine.stats.cache_hits == 0
        rounds = 4
        for t in range(rounds):
            z = np.concatenate([context, grid[t]])
            for gp in heads.values():
                gp.add(z, float(t))
            hits_before = engine.stats.cache_hits
            engine.posterior(context)  # extension path: no hit
            assert engine.stats.cache_hits == hits_before
            engine.posterior(context)  # pure re-query: one hit per head
            assert engine.stats.cache_hits == hits_before + len(heads)
        assert engine.stats.cache_hits == rounds * len(heads)
        assert_matches_direct(engine, heads, context)

    def test_eviction_triggers_rebuild(self):
        rng = np.random.default_rng(8)
        grid = make_grid(rng)
        gp = make_gp(max_observations=5, eviction_block=2)
        engine, _ = make_engine(grid, heads={"cost": gp})
        context = rng.random(CONTEXT_DIM)
        for t in range(6):
            gp.add(np.concatenate([context, grid[t]]), float(t))
            engine.posterior(context)
        rebuilds = engine.stats.rebuilds
        for t in range(6, 10):  # push past the budget -> eviction
            gp.add(np.concatenate([context, grid[t]]), float(t))
        assert gp.n_observations <= 7
        assert_matches_direct(engine, {"cost": gp}, context)
        assert engine.stats.rebuilds > rebuilds

    def test_hyperparameter_swap_invalidates(self):
        rng = np.random.default_rng(9)
        grid = make_grid(rng)
        gp = make_gp()
        engine, _ = make_engine(grid, heads={"cost": gp})
        context = rng.random(CONTEXT_DIM)
        gp.add(np.concatenate([context, grid[0]]), 1.0)
        engine.posterior(context)
        gp.kernel = Matern(
            lengthscales=np.full(CONTEXT_DIM + CONTROL_DIM, 1.3),
            output_scale=9.0,
        )
        gp.fit(gp.inputs, gp.targets)
        assert_matches_direct(engine, {"cost": gp}, context)

    def test_noise_change_invalidates_while_empty(self):
        rng = np.random.default_rng(10)
        grid = make_grid(rng)
        gp = make_gp(output_scale=4.0)
        engine, _ = make_engine(grid, heads={"cost": gp})
        context = rng.random(CONTEXT_DIM)
        before = engine.posterior(context)
        np.testing.assert_allclose(before.variance("cost"), 4.0)
        gp.kernel = Matern(
            lengthscales=np.full(CONTEXT_DIM + CONTROL_DIM, 0.7),
            output_scale=2.0,
        )
        after = engine.posterior(context)
        np.testing.assert_allclose(after.variance("cost"), 2.0)

    def test_lru_bound(self):
        rng = np.random.default_rng(11)
        grid = make_grid(rng)
        engine, _ = make_engine(grid, max_cached_contexts=2)
        for _ in range(5):
            engine.posterior(rng.random(CONTEXT_DIM))
        assert engine.n_cached_contexts == 2
        assert engine.stats.lru_evictions == 3

    def test_reset_cache(self):
        rng = np.random.default_rng(12)
        grid = make_grid(rng)
        engine, _ = make_engine(grid)
        engine.posterior(rng.random(CONTEXT_DIM))
        assert engine.n_cached_contexts == 1
        engine.reset_cache()
        assert engine.n_cached_contexts == 0

    def test_joint_grid_layout(self):
        rng = np.random.default_rng(13)
        grid = make_grid(rng)
        engine, _ = make_engine(grid)
        context = rng.random(CONTEXT_DIM)
        joint = engine.joint_grid(context)
        np.testing.assert_array_equal(joint[:, :CONTEXT_DIM],
                                      np.tile(context, (grid.shape[0], 1)))
        np.testing.assert_array_equal(joint[:, CONTEXT_DIM:], grid)
        # Cached: same object on the second call.
        assert engine.joint_grid(context) is joint


class TestValidationAndStats:
    def test_unknown_head_raises(self):
        rng = np.random.default_rng(14)
        engine, _ = make_engine(make_grid(rng))
        with pytest.raises(KeyError):
            engine.posterior(rng.random(CONTEXT_DIM), heads=("bogus",))

    def test_context_shape_and_finiteness(self):
        rng = np.random.default_rng(15)
        engine, _ = make_engine(make_grid(rng))
        with pytest.raises(ValueError):
            engine.posterior(rng.random(CONTEXT_DIM + 1))
        bad = np.array([0.1, np.nan, 0.2])
        with pytest.raises(ValueError):
            engine.posterior(bad)

    def test_head_dim_mismatch_raises(self):
        rng = np.random.default_rng(16)
        bad_gp = GaussianProcess(
            Matern(lengthscales=np.ones(2), output_scale=1.0)
        )
        with pytest.raises(ValueError):
            SurrogateEngine({"cost": bad_gp}, make_grid(rng),
                            context_dim=CONTEXT_DIM)

    def test_constructor_validation(self):
        rng = np.random.default_rng(17)
        grid = make_grid(rng)
        with pytest.raises(ValueError):
            SurrogateEngine({}, grid, context_dim=CONTEXT_DIM)
        with pytest.raises(ValueError):
            make_engine(grid, max_cached_contexts=0)

    def test_stats_snapshot_keys(self):
        rng = np.random.default_rng(18)
        engine, _ = make_engine(make_grid(rng))
        engine.posterior(rng.random(CONTEXT_DIM))
        snap = engine.stats.snapshot()
        for key in ("queries", "head_queries", "kernel_evals", "cache_hits",
                    "extensions", "rebuilds", "lru_evictions", "wall_time_s"):
            assert key in snap
        assert snap["queries"] == 1
        assert snap["head_queries"] == 3

    def test_batch_accessors(self):
        rng = np.random.default_rng(19)
        grid = make_grid(rng)
        engine, _ = make_engine(grid)
        batch = engine.posterior(rng.random(CONTEXT_DIM))
        assert isinstance(batch, PosteriorBatch)
        assert batch.n_points == grid.shape[0]
        assert set(batch.heads) == {"cost", "delay", "map"}
        mean, std = batch.moments("cost")
        np.testing.assert_allclose(std, np.sqrt(batch.variance("cost")))
        assert mean.shape == (grid.shape[0],)
        # std is cached after the first derivation.
        assert batch.std("cost") is batch.std("cost")
