"""Tests for the power-budgeted (delay-minimising) formulation."""

import numpy as np
import pytest

from repro.core.alternative import PowerBudgetedEdgeBOL, PowerBudgets
from repro.testbed.config import TestbedConfig
from repro.testbed.scenarios import static_scenario


def make_problem(n_levels=7, seed=0):
    testbed = TestbedConfig(n_levels=n_levels)
    env = static_scenario(mean_snr_db=35.0, rng=seed, config=testbed)
    return testbed, env


class TestPowerBudgets:
    def test_satisfied(self):
        budgets = PowerBudgets(server_max_w=120.0, bs_max_w=6.0, rho_min=0.5)
        assert budgets.satisfied(100.0, 5.0, 0.6)
        assert not budgets.satisfied(130.0, 5.0, 0.6)
        assert not budgets.satisfied(100.0, 7.0, 0.6)
        assert not budgets.satisfied(100.0, 5.0, 0.4)

    def test_validation(self):
        with pytest.raises(ValueError):
            PowerBudgets(server_max_w=0.0, bs_max_w=6.0)
        with pytest.raises(ValueError):
            PowerBudgets(server_max_w=100.0, bs_max_w=6.0, rho_min=1.5)


class TestPowerBudgetedEdgeBOL:
    def make_agent(self, testbed, rho_min=0.5):
        return PowerBudgetedEdgeBOL(
            testbed.control_grid(),
            PowerBudgets(server_max_w=120.0, bs_max_w=6.0, rho_min=rho_min),
        )

    def test_s0_is_minimum_power_corner(self):
        testbed, _ = make_problem(n_levels=5)
        agent = self.make_agent(testbed)
        anchor = agent.control_grid[agent.s0_index]
        assert anchor[1] == pytest.approx(0.1)   # min airtime
        assert anchor[2] == pytest.approx(0.0)   # min GPU speed
        assert anchor[0] == pytest.approx(1.0)   # full res (mAP-safe)

    def test_s0_low_res_without_map_constraint(self):
        testbed, _ = make_problem(n_levels=5)
        agent = PowerBudgetedEdgeBOL(
            testbed.control_grid(),
            PowerBudgets(server_max_w=120.0, bs_max_w=6.0, rho_min=0.0),
        )
        anchor = agent.control_grid[agent.s0_index]
        assert anchor[0] == pytest.approx(0.25)

    def test_first_pick_is_safe_anchor(self):
        testbed, env = make_problem(n_levels=5)
        agent = self.make_agent(testbed)
        policy = agent.select(env.observe_context())
        np.testing.assert_allclose(
            policy.to_array(), agent.control_grid[agent.s0_index]
        )

    def test_delay_improves_within_budgets(self):
        testbed, env = make_problem()
        agent = self.make_agent(testbed)
        delays, servers, bss = [], [], []
        for _ in range(90):
            context = env.observe_context()
            policy = agent.select(context)
            obs = env.step(policy)
            agent.observe(context, policy, obs)
            delays.append(obs.delay_s)
            servers.append(obs.server_power_w)
            bss.append(obs.bs_power_w)
        assert np.mean(delays[-20:]) < np.mean(delays[:5]) * 0.7
        assert np.mean([p > 120.0 for p in servers[30:]]) < 0.1
        assert np.mean([p > 6.0 for p in bss[30:]]) < 0.1

    def test_tighter_budget_means_higher_delay(self):
        def converged_delay(server_cap):
            testbed, env = make_problem(seed=1)
            agent = PowerBudgetedEdgeBOL(
                testbed.control_grid(),
                PowerBudgets(server_max_w=server_cap, bs_max_w=6.5,
                             rho_min=0.5),
            )
            delays = []
            for _ in range(80):
                context = env.observe_context()
                policy = agent.select(context)
                obs = env.step(policy)
                agent.observe(context, policy, obs)
                delays.append(obs.delay_s)
            return float(np.mean(delays[-20:]))

        assert converged_delay(100.0) >= converged_delay(180.0) * 0.95

    def test_set_constraints_updates_priors(self):
        testbed, _ = make_problem(n_levels=5)
        agent = self.make_agent(testbed)
        agent.set_constraints(
            PowerBudgets(server_max_w=200.0, bs_max_w=8.0, rho_min=0.5)
        )
        assert agent._server_gp.prior_mean == pytest.approx(300.0)
        assert agent._bs_gp.prior_mean == pytest.approx(12.0)

    def test_grid_validation(self):
        with pytest.raises(ValueError):
            PowerBudgetedEdgeBOL(
                np.zeros((3, 2)),
                PowerBudgets(server_max_w=100.0, bs_max_w=6.0),
            )
