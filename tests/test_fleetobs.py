"""Fleet observability: metric store, SLO/energy ledger, causal tracing."""

import json

import pytest

from repro.experiments.fleet import run_fleet_cell_sim
from repro.fleetobs import (
    FleetLedger,
    MetricStore,
    critical_path_report,
    fixed_max_baseline_w,
    render_status,
    status_payload,
)
from repro.obs import diagnose
from repro.telemetry import runtime as telemetry
from repro.testbed.config import TestbedConfig


def kpi(cell, t, **over):
    """A minimal ``type: "kpi"`` record with sane defaults."""
    record = {
        "type": "kpi", "cell": cell, "t": t, "cost": 10.0, "delay_s": 0.2,
        "map_score": 0.7, "server_power_w": 100.0, "bs_power_w": 8.0,
        "d_max_s": 0.5, "rho_min": 0.5, "delay_violation": 0,
        "map_violation": 0, "baseline_power_w": 300.0, "degraded": False,
    }
    record.update(over)
    return record


class TestMetricStoreIngest:
    def test_kpi_series_extracted(self):
        store = MetricStore()
        assert store.ingest(kpi("cell000", 0, cost=5.0))
        assert store.ingest(kpi("cell000", 1, cost=7.0))
        assert store.series("cell000", "cost") == [(0, 5.0), (1, 7.0)]
        assert "bs_power_w" in store.series_names("cell000")

    def test_duplicate_records_dropped(self):
        store = MetricStore()
        assert store.ingest(kpi("cell000", 0))
        assert not store.ingest(kpi("cell000", 0, cost=99.0))
        assert store.duplicates == 1
        assert store.series("cell000", "cost") == [(0, 10.0)]

    def test_replayed_file_is_noop(self, tmp_path):
        store = MetricStore()
        for t in range(5):
            store.ingest(kpi("cell000", t))
        path = store.dump_jsonl(tmp_path / "metrics.jsonl")
        before = store.summary()
        assert store.ingest_jsonl(path) == 0
        after = store.summary()
        assert after["ingested"] == before["ingested"]
        assert after["duplicates"] == before["duplicates"] + 5

    def test_dump_roundtrips_into_fresh_store(self, tmp_path):
        store = MetricStore()
        for t in range(4):
            store.ingest(kpi("cell000", t, cost=float(t)))
        store.ingest({"type": "alert", "rule": "delay", "severity": "warn",
                      "cell": "cell000", "t": 2, "message": "m", "value": 1.0})
        path = store.dump_jsonl(tmp_path / "metrics.jsonl")
        fresh = MetricStore()
        assert fresh.ingest_jsonl(path) == 5
        assert fresh.series("cell000", "cost") == store.series(
            "cell000", "cost"
        )
        assert len(fresh.alerts()) == 1

    def test_malformed_jsonl_names_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type":"kpi","cell":"a","t":0}\nnot json\n')
        with pytest.raises(ValueError, match="2"):
            MetricStore().ingest_jsonl(path)

    def test_decision_records_feed_learner_series_only(self):
        store = MetricStore()
        store.ingest({
            "type": "decision", "cell": "cell000", "t": 3,
            "safe_set": {"fraction": 0.25},
            "margins": {"delay_slack_s": 0.1, "map_slack": 0.05},
            "regret": {"cumulative": 2.5},
            "outcome": {"cost": 11.0},
        })
        assert store.series("cell000", "safe_fraction") == [(3, 0.25)]
        assert store.series("cell000", "regret") == [(3, 2.5)]
        # outcome cost comes only from KPI records — never double-counted
        assert store.series("cell000", "cost") == []

    def test_supervision_events_and_spans_filed(self):
        store = MetricStore()
        store.ingest({"type": "decision", "event": "recovery",
                      "agent": "cell001", "t": 5})
        store.ingest({"type": "span", "trace": 1, "id": 1, "parent": None,
                      "depth": 0, "name": "fleet.round", "start_s": 0.0,
                      "duration_s": 0.1, "attrs": {}})
        assert len(store.events()) == 1
        assert len(store.spans()) == 1
        assert store.by_type["event"] == 1

    def test_non_finite_and_missing_values_skipped(self):
        store = MetricStore()
        store.ingest(kpi("cell000", 0, cost=float("nan"),
                         baseline_power_w=None))
        assert store.series("cell000", "cost") == []
        assert store.series("cell000", "baseline_power_w") == []
        assert store.series("cell000", "delay_s") == [(0, 0.2)]

    def test_bool_violations_become_floats(self):
        store = MetricStore()
        store.ingest(kpi("cell000", 0, delay_violation=True))
        assert store.series("cell000", "delay_violation") == [(0, 1.0)]


class TestMetricStoreQueries:
    def _store(self):
        store = MetricStore(rollup_every=5)
        for c, base in (("cell000", 1.0), ("cell001", 3.0)):
            for t in range(20):
                store.ingest(kpi(c, t, cost=base + t * 0.1))
        return store

    def test_range_query(self):
        store = self._store()
        points = store.series("cell000", "cost", t_min=5, t_max=7)
        assert [t for t, _ in points] == [5, 6, 7]

    def test_rollups_cover_buckets(self):
        store = self._store()
        rollups = store.rollups("cell000", "cost")
        assert len(rollups) == 4
        assert rollups[0]["t_start"] == 0 and rollups[0]["t_end"] == 4
        assert rollups[0]["count"] == 5
        assert rollups[0]["min"] == pytest.approx(1.0)
        assert rollups[0]["max"] == pytest.approx(1.4)

    def test_raw_ring_bounded_rollups_survive(self):
        store = MetricStore(raw_capacity=8, rollup_every=5)
        for t in range(40):
            store.ingest(kpi("cell000", t))
        assert len(store.series("cell000", "cost")) == 8
        assert len(store.rollups("cell000", "cost")) == 8

    def test_aggregate_across_cells(self):
        store = self._store()
        agg = store.aggregate("cost")
        assert agg["count"] == 40
        assert agg["min"] == pytest.approx(1.0)
        assert agg["max"] == pytest.approx(4.9)

    def test_top_k_deterministic(self):
        store = self._store()
        top = store.top_k("cost", k=1, agg="mean")
        assert top[0][0] == "cell001"
        bottom = store.top_k("cost", k=2, agg="mean", reverse=False)
        assert [cell for cell, _ in bottom] == ["cell000", "cell001"]

    def test_top_k_unknown_aggregate_rejected(self):
        with pytest.raises(ValueError, match="aggregate"):
            self._store().top_k("cost", agg="median")

    def test_metrics_snapshot_shape(self):
        snapshot = self._store().metrics_snapshot()
        assert snapshot["counters"]["fleetobs.ingested"] == 40
        assert snapshot["gauges"]["fleetobs.cells"] == 2.0


class TestFleetLedger:
    def test_baseline_matches_config_ratings(self):
        config = TestbedConfig()
        baseline = fixed_max_baseline_w(config)
        assert baseline > (
            config.host_idle_power_w + config.gpu_max_power_cap_w
        )

    def test_energy_and_burn_accounting(self):
        store = MetricStore()
        for t in range(10):
            store.ingest(kpi(
                "cell000", t, server_power_w=100.0, bs_power_w=10.0,
                baseline_power_w=300.0, delay_violation=int(t < 2),
            ))
        report = FleetLedger(store, delay_budget=0.1).cell_report("cell000")
        assert report["periods"] == 10
        assert report["delay_violations"] == 2
        # 2/10 observed over a 0.1 budget -> burning 2x the allowance
        assert report["delay_burn"] == pytest.approx(2.0)
        assert report["energy_saved_j"] == pytest.approx(10 * 190.0)
        assert report["savings_fraction"] == pytest.approx(1 - 110.0 / 300.0)

    def test_recent_burn_uses_window(self):
        store = MetricStore()
        for t in range(30):
            store.ingest(kpi("cell000", t, delay_violation=int(t >= 25)))
        ledger = FleetLedger(store, delay_budget=0.1, window=10)
        report = ledger.cell_report("cell000")
        assert report["delay_burn_recent"] == pytest.approx(5.0)
        assert report["delay_burn"] == pytest.approx(30 / 30 * 5 / 30 / 0.1)

    def test_fleet_rollup_names_worst_cell(self):
        store = MetricStore()
        for t in range(10):
            store.ingest(kpi("cell000", t, delay_violation=0))
            store.ingest(kpi("cell001", t, delay_violation=1))
        fleet = FleetLedger(store).report()["fleet"]
        assert fleet["worst_delay_burn_cell"] == "cell001"
        assert fleet["n_cells"] == 2
        assert fleet["energy_saved_j"] is not None

    def test_validation(self):
        store = MetricStore()
        with pytest.raises(ValueError, match="budget"):
            FleetLedger(store, delay_budget=0.0)
        with pytest.raises(ValueError, match="window"):
            FleetLedger(store, window=0)

    def test_missing_baseline_yields_none(self):
        store = MetricStore()
        store.ingest(kpi("cell000", 0, baseline_power_w=None))
        report = FleetLedger(store).cell_report("cell000")
        assert report["energy_saved_j"] is None
        assert report["savings_fraction"] is None
        assert report["mean_power_w"] is not None


class TestCriticalPath:
    def _span(self, trace, sid, parent, name, duration, topic=None):
        attrs = {"topic": topic} if topic else {}
        return {"type": "span", "trace": trace, "id": sid, "parent": parent,
                "depth": 0, "name": name, "start_s": 0.0,
                "duration_s": duration, "attrs": attrs}

    def test_report_over_synthetic_rounds(self):
        records = []
        for r in range(3):
            base = r * 10
            records += [
                self._span(r, base + 1, None, "fleet.round", 1.0),
                self._span(r, base + 2, base + 1, "edgebol.select", 0.6),
                self._span(r, base + 3, base + 1, "bus.deliver", 0.2,
                           topic="cell000.e2.indication"),
                self._span(r, base + 4, base + 2, "engine.posterior", 0.5),
            ]
        report = critical_path_report(records)
        assert report["rounds"] == 3
        assert report["round_mean_s"] == pytest.approx(1.0)
        hops = {row["hop"]: row for row in report["hops"]}
        # per-cell topic prefix normalised away
        assert "bus.deliver:e2.indication" in hops
        assert hops["edgebol.select"]["count"] == 3
        path = [step["hop"] for step in report["critical_path"]]
        assert path == ["edgebol.select", "engine.posterior"]
        assert report["critical_path_share"] == pytest.approx(1.0)

    def test_empty_and_non_round_spans_ignored(self):
        report = critical_path_report([
            self._span(1, 1, None, "edgebol.select", 0.1)
        ])
        assert report["rounds"] == 0
        assert report["round_mean_s"] is None
        assert report["hops"] == []


class TestFleetRunIntegration:
    PERIODS = 12
    CELLS = 3

    def _run(self, metrics=None, **kw):
        return run_fleet_cell_sim(
            n_cells=self.CELLS, n_periods=self.PERIODS, seed=7, levels=3,
            metrics=metrics, **kw,
        )

    def _rows(self, result):
        return json.dumps([
            (cell_id, log.as_rows())
            for cell_id, log in sorted(result.logs.items())
        ])

    def test_metrics_run_bit_identical_to_plain_run(self):
        plain = self._run()
        store = MetricStore()
        observed = self._run(metrics=store, trace_rounds_every=4)
        assert self._rows(plain) == self._rows(observed)
        assert plain.loop_steps == observed.loop_steps
        assert plain.alert_counts == observed.alert_counts

    def test_store_captures_every_cell_period(self):
        store = MetricStore()
        self._run(metrics=store, trace_rounds_every=4)
        assert store.cells() == [f"cell{c:03d}" for c in range(self.CELLS)]
        for cell in store.cells():
            assert len(store.series(cell, "cost")) == self.PERIODS
            assert len(store.series(cell, "baseline_power_w")) == self.PERIODS

    def test_round_spans_stitch_through_bus(self):
        store = MetricStore()
        self._run(metrics=store, trace_rounds_every=4)
        spans = store.spans()
        by_id = {s["id"]: s for s in spans}
        roots = [s for s in spans if s["name"] == "fleet.round"]
        # periods 0, 4, 8 traced for each of the 3 cells
        assert len(roots) == 9
        delivers = [s for s in spans if s["name"] == "bus.deliver"]
        assert delivers
        for deliver in delivers:
            node = deliver
            while node.get("parent") in by_id:
                node = by_id[node["parent"]]
            assert node["name"] == "fleet.round"
        report = critical_path_report(spans)
        assert report["rounds"] == 9
        assert any("bus.deliver" in row["hop"] for row in report["hops"])

    def test_tracing_leaves_no_global_telemetry_state(self):
        store = MetricStore()
        self._run(metrics=store, trace_rounds_every=4)
        assert not telemetry.enabled()

    def test_ledger_reports_energy_saved_on_real_run(self):
        store = MetricStore()
        self._run(metrics=store, trace_rounds_every=4)
        fleet = FleetLedger(store).report()["fleet"]
        assert fleet["n_cells"] == self.CELLS
        assert fleet["energy_saved_j"] > 0
        assert 0.0 < fleet["mean_savings_fraction"] < 1.0


class TestStatusDashboard:
    def _store(self):
        store = MetricStore()
        for t in range(15):
            store.ingest(kpi("cell000", t, delay_violation=int(t % 5 == 0)))
            store.ingest(kpi("cell001", t))
        store.ingest({"type": "alert", "rule": "delay_violation",
                      "severity": "warn", "cell": "cell000", "t": 5,
                      "message": "m", "value": 1.0})
        store.ingest({"type": "decision", "event": "recovery",
                      "agent": "cell000", "t": 7})
        store.ingest({"type": "span", "trace": 1, "id": 1, "parent": None,
                      "depth": 0, "name": "fleet.round", "start_s": 0.0,
                      "duration_s": 0.5, "attrs": {}})
        store.ingest({"type": "span", "trace": 1, "id": 2, "parent": 1,
                      "depth": 1, "name": "edgebol.select", "start_s": 0.0,
                      "duration_s": 0.4, "attrs": {}})
        return store

    def test_payload_sections(self):
        payload = status_payload(self._store())
        assert payload["summary"]["ingested"] == 34
        assert payload["alerts"]["total"] == 1
        assert payload["alerts"]["by_rule"] == {"delay_violation": 1}
        assert payload["events"] == 1
        assert payload["critical_path"]["rounds"] == 1
        assert payload["top_cost"][0][0] in ("cell000", "cell001")

    def test_payload_is_json_serialisable(self):
        json.dumps(status_payload(self._store()))

    def test_render_mentions_energy_and_burn(self):
        text = render_status(self._store())
        assert "energy saved" in text
        assert "burn" in text
        assert "cell000" in text and "cell001" in text
        assert "edgebol.select" in text
        # cell000 violates 3/15 over a 0.1 budget -> burn 2, flagged
        assert "2!" in text

    def test_render_empty_store(self):
        text = render_status(MetricStore())
        assert "no per-cell KPI series" in text


class TestDiagnoseDirectory:
    def _write_trace(self, path, degraded_from=None):
        records = []
        for t in range(12):
            records.append({
                "type": "decision", "t": t, "agent": "cell000",
                "degraded": degraded_from is not None and t >= degraded_from,
                "margins": {"delay_slack_s": 0.1, "map_slack": 0.1},
                "outcome": {"cost": 1.0},
            })
        path.write_text(
            "\n".join(json.dumps(r) for r in records) + "\n"
        )

    def test_flags_annotated_with_source(self, tmp_path):
        self._write_trace(tmp_path / "cell000.jsonl", degraded_from=6)
        self._write_trace(tmp_path / "cell001.jsonl")
        text, flags = diagnose.diagnose_directory(tmp_path)
        assert "diagnosed 2 trace(s)" in text
        assert "cell000.jsonl" in text and "cell001.jsonl" in text
        assert len(flags) == 1
        assert flags[0]["kind"] == "degraded_stretch"
        assert flags[0]["source"] == "cell000.jsonl"

    def test_empty_directory_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="no .*jsonl"):
            diagnose.diagnose_directory(tmp_path)
