"""Tests for the HARQ / BLER link-level model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ran import phy
from repro.ran.harq import HarqModel, first_transmission_bler

snrs = st.floats(min_value=-10.0, max_value=45.0, allow_nan=False)
mcss = st.integers(0, phy.MAX_MCS)


class TestFirstTransmissionBler:
    def test_waterfall_shape(self):
        """BLER decreases monotonically with SNR for a fixed MCS."""
        values = [first_transmission_bler(10, s) for s in np.linspace(-5, 30, 36)]
        assert all(b <= a for a, b in zip(values, values[1:]))

    def test_higher_mcs_needs_more_snr(self):
        assert first_transmission_bler(20, 10.0) > first_transmission_bler(5, 10.0)

    def test_extremes(self):
        assert first_transmission_bler(0, 40.0) < 0.01
        assert first_transmission_bler(28, -10.0) > 0.99

    def test_invalid_mcs(self):
        with pytest.raises(ValueError):
            first_transmission_bler(-1, 10.0)

    @given(mcss, snrs)
    @settings(max_examples=80, deadline=None)
    def test_property_is_probability(self, mcs, snr):
        assert 0.0 <= first_transmission_bler(mcs, snr) <= 1.0


class TestHarqModel:
    def setup_method(self):
        self.harq = HarqModel()

    def test_expected_transmissions_bounds(self):
        for snr in (-5.0, 5.0, 15.0, 35.0):
            expected = self.harq.expected_transmissions(15, snr)
            assert 1.0 <= expected <= self.harq.max_transmissions

    def test_good_channel_single_transmission(self):
        assert self.harq.expected_transmissions(5, 35.0) == pytest.approx(1.0, abs=1e-3)

    def test_bad_channel_maxes_out(self):
        expected = self.harq.expected_transmissions(28, -10.0)
        assert expected > self.harq.max_transmissions - 0.5

    def test_residual_bler_shrinks_with_retransmissions(self):
        one_shot = HarqModel(max_transmissions=1)
        four_shot = HarqModel(max_transmissions=4)
        snr = 18.0
        assert four_shot.residual_bler(20, snr) < one_shot.residual_bler(20, snr)

    def test_combining_gain_helps(self):
        weak = HarqModel(combining_gain_db=0.5)
        strong = HarqModel(combining_gain_db=4.0)
        assert strong.residual_bler(20, 15.0) <= weak.residual_bler(20, 15.0)

    def test_goodput_factor_bounds(self):
        for snr in (-5.0, 10.0, 35.0):
            factor = self.harq.goodput_factor(15, snr)
            assert 0.0 <= factor <= 1.0

    def test_goodput_factor_near_one_on_good_channel(self):
        assert self.harq.goodput_factor(10, 35.0) > 0.99

    def test_hol_delay_zero_on_good_channel(self):
        assert self.harq.mean_hol_delay_subframes(10, 35.0) == pytest.approx(
            0.0, abs=0.1
        )

    def test_hol_delay_grows_on_bad_channel(self):
        good = self.harq.mean_hol_delay_subframes(20, 30.0)
        bad = self.harq.mean_hol_delay_subframes(20, 14.0)
        assert bad > good

    def test_best_mcs_monotone_in_snr(self):
        choices = [self.harq.best_mcs(snr) for snr in np.linspace(0, 35, 15)]
        assert all(b >= a for a, b in zip(choices, choices[1:]))

    def test_best_mcs_respects_cap(self):
        assert self.harq.best_mcs(35.0, max_mcs=10) <= 10

    def test_best_mcs_beats_neighbours(self):
        """The selected MCS maximises effective throughput."""
        snr = 20.0
        best = self.harq.best_mcs(snr)
        def score(m):
            return phy.mcs_efficiency(m) * self.harq.goodput_factor(m, snr)
        for other in (best - 1, best + 1):
            if 0 <= other <= phy.MAX_MCS:
                assert score(best) >= score(other)

    def test_validation(self):
        with pytest.raises(ValueError):
            HarqModel(max_transmissions=0)
        with pytest.raises(ValueError):
            HarqModel(rtt_subframes=0)

    @given(mcss, snrs)
    @settings(max_examples=60, deadline=None)
    def test_property_residual_at_most_first_bler(self, mcs, snr):
        harq = HarqModel()
        assert (
            harq.residual_bler(mcs, snr)
            <= first_transmission_bler(mcs, snr) + 1e-12
        )
