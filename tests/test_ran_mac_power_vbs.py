"""Tests for the MAC scheduler, BS power model and virtualized BS."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ran import phy
from repro.ran.mac import RadioPolicy, RoundRobinScheduler
from repro.ran.power import BSPowerModel
from repro.ran.vbs import VirtualizedBS


class TestRadioPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RadioPolicy(airtime=1.5, max_mcs=10)
        with pytest.raises(ValueError):
            RadioPolicy(airtime=0.5, max_mcs=99)

    def test_from_normalized(self):
        policy = RadioPolicy.from_normalized(0.5, 1.0)
        assert policy.airtime == 0.5
        assert policy.max_mcs == phy.MAX_MCS


class TestRoundRobinScheduler:
    def setup_method(self):
        self.scheduler = RoundRobinScheduler(mac_efficiency=0.2)

    def test_empty_users(self):
        assert self.scheduler.allocate(RadioPolicy(1.0, 20), []) == []

    def test_equal_shares(self):
        allocs = self.scheduler.allocate(RadioPolicy(0.9, 20), [30.0, 30.0, 30.0])
        assert all(a.airtime_share == pytest.approx(0.3) for a in allocs)

    def test_goodput_share_with_pipelining_gain(self):
        one = self.scheduler.allocate(RadioPolicy(1.0, 20), [30.0])[0]
        two = self.scheduler.allocate(RadioPolicy(1.0, 20), [30.0, 30.0])[0]
        gain = self.scheduler.effective_mac_efficiency(2) / (
            self.scheduler.effective_mac_efficiency(1)
        )
        assert two.goodput_bps == pytest.approx(one.goodput_bps * gain / 2)

    def test_effective_efficiency_monotone_and_capped(self):
        effs = [self.scheduler.effective_mac_efficiency(n) for n in range(1, 12)]
        assert all(b >= a for a, b in zip(effs, effs[1:]))
        assert effs[0] == self.scheduler.mac_efficiency
        assert effs[-1] <= self.scheduler.max_efficiency

    def test_low_snr_user_gets_lower_mcs(self):
        allocs = self.scheduler.allocate(RadioPolicy(1.0, 28), [35.0, 3.0])
        assert allocs[0].mcs > allocs[1].mcs
        assert allocs[0].goodput_bps > allocs[1].goodput_bps

    def test_policy_caps_mcs(self):
        allocs = self.scheduler.allocate(RadioPolicy(1.0, 4), [35.0])
        assert allocs[0].mcs == 4

    def test_cell_capacity_uses_full_airtime(self):
        policy = RadioPolicy(0.5, 20)
        cap = self.scheduler.cell_capacity_bps(policy, 35.0)
        alloc = self.scheduler.allocate(policy, [35.0])[0]
        assert cap == pytest.approx(alloc.goodput_bps)

    @given(st.integers(1, 6), st.floats(0.1, 1.0))
    @settings(max_examples=30, deadline=None)
    def test_property_shares_sum_to_airtime(self, n_users, airtime):
        allocs = self.scheduler.allocate(
            RadioPolicy(airtime, 20), [30.0] * n_users
        )
        total = sum(a.airtime_share for a in allocs)
        assert total == pytest.approx(airtime)


class TestBSPowerModel:
    def setup_method(self):
        self.model = BSPowerModel()

    def test_idle_at_zero_load(self):
        power = self.model.power_w(10, 0.0, 1.0, 1e7)
        assert power == pytest.approx(self.model.idle_power_w)

    def test_busy_fraction_capped_by_airtime(self):
        busy = self.model.busy_fraction(1e9, 0.3, 1e7)
        assert busy == pytest.approx(0.3)

    def test_busy_fraction_load_proportional(self):
        low = self.model.busy_fraction(1e6, 1.0, 1e7)
        high = self.model.busy_fraction(2e6, 1.0, 1e7)
        assert high == pytest.approx(2 * low)

    def test_power_monotone_in_load(self):
        p1 = self.model.power_w(10, 1e6, 1.0, 1e7)
        p2 = self.model.power_w(10, 3e6, 1.0, 1e7)
        assert p2 > p1

    def test_saturated_power_increases_with_mcs(self):
        # At saturation the per-subframe MCS premium dominates (Fig. 6).
        low = self.model.power_w(10, 1e12, 1.0, 1e7)
        high = self.model.power_w(28, 1e12, 1.0, 1e7)
        assert high > low

    def test_max_power_bound(self):
        p = self.model.power_w(phy.MAX_MCS, 1e12, 1.0, 1e7)
        assert p <= self.model.max_power_w + 1e-9

    def test_grant_utilization_validation(self):
        with pytest.raises(ValueError):
            BSPowerModel(grant_utilization=0.0)


class TestVirtualizedBS:
    def setup_method(self):
        self.vbs = VirtualizedBS(mac_efficiency=0.19)

    def test_grant_summary(self):
        grant = self.vbs.grant(RadioPolicy(1.0, 28), [35.0, 5.0])
        assert len(grant.allocations) == 2
        assert grant.slice_capacity_bps == pytest.approx(
            sum(a.goodput_bps for a in grant.allocations)
        )
        assert 0 <= grant.mean_mcs <= phy.MAX_MCS

    def test_empty_grant(self):
        grant = self.vbs.grant(RadioPolicy(1.0, 28), [])
        assert grant.allocations == ()
        assert grant.slice_capacity_bps == 0.0

    def test_transmission_time(self):
        grant = self.vbs.grant(RadioPolicy(1.0, 28), [35.0])
        alloc = grant.allocations[0]
        t = self.vbs.transmission_time_s(1e6, alloc)
        assert t == pytest.approx(1e6 / alloc.goodput_bps)

    def test_transmission_time_zero_goodput_is_inf(self):
        grant = self.vbs.grant(RadioPolicy(0.0, 28), [35.0])
        t = self.vbs.transmission_time_s(1e6, grant.allocations[0])
        assert t == float("inf")

    def test_power_idle_without_users(self):
        grant = self.vbs.grant(RadioPolicy(1.0, 28), [])
        power = self.vbs.baseband_power_w(RadioPolicy(1.0, 28), grant, 0.0)
        assert power == pytest.approx(self.vbs.power_model.idle_power_w)

    def test_low_load_power_decreases_with_mcs(self):
        """The Fig. 5 regime: higher MCS -> shorter busy time -> less power."""
        offered = 3e6  # well below capacity
        powers = []
        for max_mcs in (6, 14, 28):
            policy = RadioPolicy(1.0, max_mcs)
            grant = self.vbs.grant(policy, [35.0])
            powers.append(self.vbs.baseband_power_w(policy, grant, offered))
        assert powers[0] > powers[1] > powers[2]

    def test_saturated_power_increases_with_mcs(self):
        """The Fig. 6 regime: saturated slice pays the high-MCS premium."""
        offered = 1e9
        powers = []
        for max_mcs in (14, 21, 28):
            policy = RadioPolicy(1.0, max_mcs)
            grant = self.vbs.grant(policy, [35.0])
            powers.append(self.vbs.baseband_power_w(policy, grant, offered))
        assert powers[0] < powers[1] < powers[2]

    def test_power_within_reported_range(self):
        """Net BBU power stays in the 4-8 W ballpark of the paper."""
        for airtime in (0.1, 0.5, 1.0):
            for max_mcs in (0, 14, 28):
                for offered in (0.0, 2e6, 1e8):
                    policy = RadioPolicy(airtime, max_mcs)
                    grant = self.vbs.grant(policy, [35.0])
                    p = self.vbs.baseband_power_w(policy, grant, offered)
                    assert 4.0 <= p <= 12.0
