"""Snapshot/restore determinism tests for :mod:`repro.core.state`.

The contract under test: a restored agent/environment replays
bit-identically to an uninterrupted one at the same seed.  "Close" is
not good enough — the GP Cholesky factor built by rank-1 extensions
differs in the last bits from a fresh factorisation, so every test here
compares with ``==`` / ``array_equal``, never ``allclose``.
"""

import numpy as np
import pytest

from repro import obs
from repro.core import state
from repro.core.edgebol import EdgeBOL
from repro.core.gp import GaussianProcess
from repro.core.kernels import Matern
from repro.experiments.recorder import RunLog
from repro.obs.decision import DecisionTracer
from repro.testbed.config import CostWeights, ServiceConstraints, TestbedConfig
from repro.testbed.scenarios import static_scenario


def make_world(seed=0, levels=4):
    testbed = TestbedConfig(n_levels=levels)
    env = static_scenario(n_users=1, rng=seed, config=testbed)
    agent = EdgeBOL(
        testbed.control_grid(), ServiceConstraints(), CostWeights(1.0, 1.0)
    )
    return env, agent


def run_periods(env, agent, n):
    """Drive the bare control loop; returns exact per-period tuples."""
    rows = []
    for _ in range(n):
        context = env.observe_context()
        policy = agent.select(context)
        observation = env.step(policy)
        cost = agent.observe(context, policy, observation)
        rows.append((
            cost, observation.delay_s, observation.map_score,
            observation.server_power_w, observation.bs_power_w,
            agent.last_safe_set_size,
        ))
    return rows


class TestArrayCodec:
    def test_round_trip_is_bit_exact(self):
        rng = np.random.default_rng(0)
        arr = rng.standard_normal((7, 3))
        arr[0, 0] = -0.0
        arr[1, 1] = np.nan
        out = state._decode_array(state._encode_array(arr))
        assert out.dtype == arr.dtype and out.shape == arr.shape
        assert arr.tobytes() == out.tobytes()

    def test_rng_state_round_trip(self):
        gen = np.random.default_rng(42)
        gen.standard_normal(17)
        snap = state.rng_state(gen)
        ahead = gen.standard_normal(5)
        state.set_rng_state(gen, snap)
        assert np.array_equal(gen.standard_normal(5), ahead)


class TestGPState:
    def test_restore_preserves_rank1_factor_bits(self):
        rng = np.random.default_rng(1)
        gp = GaussianProcess(Matern([1.0, 1.0]), noise_variance=0.01)
        x = rng.standard_normal((6, 2))
        y = rng.standard_normal(6)
        gp.fit(x[:3], y[:3])
        for i in range(3, 6):  # rank-1 extensions, not a fresh factor
            gp.add(x[i], y[i])
        snap = state.gp_state(gp)
        chol_before = gp._chol.copy()
        version_before = gp._factor_version
        gp.add(rng.standard_normal(2), 0.5)  # diverge
        state.restore_gp_state(gp, snap)
        assert gp._chol.tobytes() == chol_before.tobytes()
        assert gp._factor_version == version_before
        query = rng.standard_normal((4, 2))
        mean1, var1 = gp.predict(query)
        state.restore_gp_state(gp, snap)
        mean2, var2 = gp.predict(query)
        assert np.array_equal(mean1, mean2) and np.array_equal(var1, var2)

    def test_restore_does_not_touch_setters(self):
        gp = GaussianProcess(Matern([1.0]), noise_variance=0.01)
        snap = state.gp_state(gp)
        version = gp._factor_version
        state.restore_gp_state(gp, snap)
        assert gp._factor_version == version  # setters would have bumped it

    def test_empty_gp_round_trip(self):
        gp = GaussianProcess(Matern([1.0]), noise_variance=0.01)
        snap = state.gp_state(gp)
        state.restore_gp_state(gp, snap)
        assert gp._x is None and gp._chol is None


class TestAgentReplay:
    def test_restored_agent_replays_bit_identically(self):
        env, agent = make_world(seed=7)
        run_periods(env, agent, 6)
        agent_snap = state.agent_state(agent)
        env_snap = state.env_state(env)
        expected = run_periods(env, agent, 8)
        state.restore_agent_state(agent, agent_snap)
        state.restore_env_state(env, env_snap)
        replayed = run_periods(env, agent, 8)
        assert replayed == expected  # exact float equality, tuple-wise

    def test_head_mismatch_is_rejected(self):
        env, agent = make_world(seed=3)
        snap = state.agent_state(agent)
        snap["heads"] = {"bogus": next(iter(snap["heads"].values()))}
        with pytest.raises(state.SnapshotError, match="heads"):
            state.restore_agent_state(agent, snap)

    def test_json_round_trip_preserves_replay(self):
        env, agent = make_world(seed=11)
        run_periods(env, agent, 5)
        blob = state.encode_snapshot({
            "agent": state.agent_state(agent),
            "env": state.env_state(env),
        })
        expected = run_periods(env, agent, 6)
        payload = state.decode_snapshot(blob)
        state.restore_agent_state(agent, payload["agent"])
        state.restore_env_state(env, payload["env"])
        assert run_periods(env, agent, 6) == expected


class TestEngineCacheState:
    def test_warm_cache_is_part_of_the_snapshot(self):
        # Regression: with the engine cache dropped on restore, seed 0
        # diverges at the third replayed period — a cold rebuild's full
        # triangular solve differs in the last bits from the warm
        # cache's incremental extensions, flipping a near-tie argmin.
        env, agent = make_world(seed=0)
        run_periods(env, agent, 4)
        snap = state.agent_state(agent)
        env_snap = state.env_state(env)
        assert snap["engine"]["entries"]  # the static context is cached
        expected = run_periods(env, agent, 4)
        state.restore_agent_state(agent, snap)
        state.restore_env_state(env, env_snap)
        assert run_periods(env, agent, 4) == expected

    def test_unknown_head_in_cache_is_rejected(self):
        env, agent = make_world(seed=2)
        run_periods(env, agent, 2)
        snap = state.engine_state(agent._engine)
        snap["entries"][0]["heads"]["bogus"] = next(
            iter(snap["entries"][0]["heads"].values())
        )
        with pytest.raises(state.SnapshotError, match="bogus"):
            state.restore_engine_state(agent._engine, snap)


class TestEnvState:
    def test_channel_and_measurement_streams_restore(self):
        env, agent = make_world(seed=5)
        run_periods(env, agent, 3)
        snap = state.env_state(env)
        policy = agent.select(env.observe_context())
        expected = env.step(policy)
        state.restore_env_state(env, snap)
        replayed = env.step(policy)
        assert replayed == expected

    def test_channel_count_mismatch_is_rejected(self):
        env, _agent = make_world(seed=5)
        snap = state.env_state(env)
        snap["channels"] = []
        with pytest.raises(state.SnapshotError, match="channels"):
            state.restore_env_state(env, snap)


class TestTracerState:
    def test_round_trip_and_boundary_guard(self):
        env, agent = make_world(seed=9)
        sink = obs.ListSink()
        with obs.use(sink):
            tracer = DecisionTracer(agent, label="cell000")
            agent.attach_tracer(tracer)
            run_periods(env, agent, 4)
            snap = state.tracer_state(tracer)
            run_periods(env, agent, 3)
            state.restore_tracer_state(tracer, snap)
            assert state.tracer_state(tracer) == snap
            tracer._pending = {"t": 99}
            with pytest.raises(state.SnapshotError, match="boundar"):
                state.tracer_state(tracer)
            agent.attach_tracer(None)


class TestRunLogState:
    def test_round_trip_truncates_to_snapshot(self):
        env, agent = make_world(seed=13)
        log = RunLog()
        for _ in range(4):
            context = env.observe_context()
            policy = agent.select(context)
            observation = env.step(policy)
            cost = agent.observe(context, policy, observation)
            log.append(cost=cost, policy=policy, observation=observation,
                       safe_set_size=agent.last_safe_set_size,
                       snr_db=30.0, d_max_s=0.4, rho_min=0.5)
        snap = state.runlog_state(log)
        costs = list(log.cost)
        log.append(cost=1.0, policy=policy, observation=observation,
                   safe_set_size=1, snr_db=30.0, d_max_s=0.4, rho_min=0.5)
        state.restore_runlog_state(log, snap)
        assert log.cost == costs and len(log) == 4


class TestFraming:
    def test_round_trip(self):
        payload = {"t": 3, "nested": {"a": [1.5, None]}}
        assert state.decode_snapshot(state.encode_snapshot(payload)) == payload

    @pytest.mark.parametrize("mutate", [
        lambda b: b[:-1] + bytes([b[-1] ^ 0xFF]),   # flipped byte
        lambda b: b[:len(b) // 2],                  # truncation
        lambda b: b"JUNK" + b,                      # bad magic
        lambda b: b"SNAP1:deadbeef",                # unterminated header
    ])
    def test_corruption_is_detected(self, mutate):
        blob = mutate(state.encode_snapshot({"t": 0}))
        with pytest.raises(state.SnapshotCorruptionError):
            state.decode_snapshot(blob)

    def test_non_bytes_rejected(self):
        with pytest.raises(state.SnapshotCorruptionError):
            state.decode_snapshot("not-bytes")


class TestInjectorState:
    def test_round_trip(self):
        from repro.faults.injector import FaultInjector
        from repro.faults.plan import FaultSpec
        spec = FaultSpec(kind="cell", mode="crash", probability=0.5)
        injector = FaultInjector([spec], rng=3, kind="cell")
        for t in range(5):
            injector.supervisor_decision("cell000", opportunity=t)
        snap = state.injector_state(injector)
        ahead = [injector.supervisor_decision("cell000", opportunity=t)
                 for t in range(5, 10)]
        state.restore_injector_state(injector, snap)
        replay = [injector.supervisor_decision("cell000", opportunity=t)
                  for t in range(5, 10)]
        assert [s is not None for s in replay] == [s is not None for s in ahead]
        assert injector.counts == snap["counts"] or injector.counts
