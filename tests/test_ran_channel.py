"""Tests for repro.ran.channel."""

import numpy as np
import pytest

from repro.ran.channel import (
    GaussMarkovChannel,
    SnrTrace,
    constant_trace,
    dynamic_context_trace,
)


class TestGaussMarkov:
    def test_deterministic_with_seed(self):
        a = GaussMarkovChannel(30.0, rng=1).sample(20)
        b = GaussMarkovChannel(30.0, rng=1).sample(20)
        np.testing.assert_array_equal(a, b)

    def test_stationary_mean(self):
        ch = GaussMarkovChannel(25.0, std_db=2.0, correlation=0.8, rng=0)
        samples = ch.sample(5000)
        assert abs(samples.mean() - 25.0) < 0.5

    def test_stationary_std(self):
        ch = GaussMarkovChannel(25.0, std_db=2.0, correlation=0.8, rng=0)
        samples = ch.sample(5000)
        assert 1.5 < samples.std() < 2.5

    def test_zero_std_is_constant(self):
        ch = GaussMarkovChannel(20.0, std_db=0.0, rng=0)
        assert np.all(ch.sample(10) == 20.0)

    def test_clipping(self):
        ch = GaussMarkovChannel(
            0.0, std_db=20.0, correlation=0.0, rng=0,
            snr_floor_db=-5.0, snr_ceil_db=5.0,
        )
        samples = ch.sample(200)
        assert samples.min() >= -5.0 and samples.max() <= 5.0

    def test_reset_and_retune(self):
        ch = GaussMarkovChannel(20.0, rng=0)
        ch.step()
        assert ch.reset() == 20.0
        ch.retune(30.0)
        assert ch.mean_snr_db == 30.0

    def test_correlation_bounds(self):
        with pytest.raises(ValueError):
            GaussMarkovChannel(20.0, correlation=1.0)

    def test_autocorrelation_positive(self):
        ch = GaussMarkovChannel(25.0, std_db=2.0, correlation=0.95, rng=3)
        s = ch.sample(3000)
        x, y = s[:-1] - s.mean(), s[1:] - s.mean()
        rho = float(np.mean(x * y) / np.mean((s - s.mean()) ** 2))
        assert rho > 0.8


class TestSnrTrace:
    def test_replay_and_wrap(self):
        trace = SnrTrace([1.0, 2.0, 3.0])
        assert [trace.step() for _ in range(5)] == [1.0, 2.0, 3.0, 1.0, 2.0]

    def test_reset(self):
        trace = SnrTrace([1.0, 2.0])
        trace.step()
        trace.reset()
        assert trace.step() == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            SnrTrace([])

    def test_nonfinite_rejected(self):
        with pytest.raises(ValueError):
            SnrTrace([1.0, float("nan")])

    def test_constant_trace(self):
        trace = constant_trace(17.0)
        assert trace.step() == 17.0 and trace.step() == 17.0


class TestDynamicContextTrace:
    def test_length_and_range(self):
        trace = dynamic_context_trace(5.0, 38.0, period=50, length=150, rng=0)
        values = trace.values_db
        assert values.size == 150
        assert values.min() >= 5.0 and values.max() <= 38.0

    def test_covers_most_of_range(self):
        values = dynamic_context_trace(5.0, 38.0, period=50, length=150, rng=0).values_db
        assert values.max() - values.min() > 25.0

    def test_no_jitter_is_deterministic(self):
        a = dynamic_context_trace(5, 38, jitter_db=0.0, rng=0).values_db
        b = dynamic_context_trace(5, 38, jitter_db=0.0, rng=99).values_db
        np.testing.assert_array_equal(a, b)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            dynamic_context_trace(10.0, 5.0)
        with pytest.raises(ValueError):
            dynamic_context_trace(5.0, 38.0, period=1)
