"""Decision-trace subsystem: runtime state, tracer, diagnose, CLI.

Covers the contract chain end to end: sink install/scope semantics in
:mod:`repro.obs.runtime`, the :class:`DriftMonitor`, the per-round
record schema assembled by :class:`DecisionTracer` (including the
bit-identical-KPIs guarantee the whole design hangs on), per-cell
collection and merging in the sweep engine, the ``repro diagnose``
anomaly detector/dashboard, and the CLI wiring.
"""

import json

import numpy as np
import pytest

from repro import cli
from repro.core import EdgeBOL
from repro.experiments import parallel
from repro.experiments import spec as spec_registry
from repro.experiments.runner import run_agent
from repro.obs import diagnose
from repro.obs import runtime as obs
from repro.obs.decision import DecisionTracer
from repro.obs.drift import DriftMonitor
from repro.telemetry import runtime as telemetry
from repro.testbed.config import CostWeights, ServiceConstraints, TestbedConfig
from repro.testbed.scenarios import static_scenario

N_PERIODS = 10


@pytest.fixture(autouse=True)
def _no_sink():
    """Every test starts and ends with no decision sink installed."""
    obs.uninstall()
    yield
    obs.uninstall()


def make_env_agent(seed=0, n_levels=4, oracle=None):
    testbed = TestbedConfig(n_levels=n_levels)
    env = static_scenario(
        mean_snr_db=35.0, rng=np.random.default_rng(seed), config=testbed
    )
    agent = EdgeBOL(
        testbed.control_grid(), ServiceConstraints(0.4, 0.5),
        CostWeights(1.0, 8.0),
    )
    return env, agent


def traced_run(seed=0, periods=N_PERIODS, oracle_cost=120.0):
    """One short traced run; returns (records, run_log)."""
    env, agent = make_env_agent(seed)
    sink = obs.ListSink()
    with obs.use(sink):
        log = run_agent(env, agent, periods, oracle_cost=oracle_cost)
    return sink.records, log


# -- runtime state -------------------------------------------------------


class TestRuntime:
    def test_emit_is_noop_without_sink(self):
        assert not obs.enabled()
        obs.emit({"t": 0})  # must not raise, must not require a sink

    def test_install_rejects_non_sink(self):
        with pytest.raises(TypeError, match="emit"):
            obs.install(object())
        assert not obs.enabled()

    def test_use_restores_previous_sink(self):
        outer, inner = obs.ListSink(), obs.ListSink()
        with obs.use(outer):
            obs.emit({"k": 1})
            with obs.use(inner):
                obs.emit({"k": 2})
            obs.emit({"k": 3})
        assert not obs.enabled()
        assert [r["k"] for r in outer.records] == [1, 3]
        assert [r["k"] for r in inner.records] == [2]

    def test_use_with_path_writes_jsonl(self, tmp_path):
        path = tmp_path / "d.jsonl"
        with obs.use(path):
            obs.emit({"t": 0})
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        record = json.loads(lines[0])
        assert record["type"] == "decision"
        assert record["t"] == 0

    def test_scope_labels_records(self):
        sink = obs.ListSink()
        with obs.use(sink):
            obs.emit({"t": 0})
            with obs.scope("cell-7"):
                obs.emit({"t": 1})
            obs.emit({"t": 2})
        assert "cell" not in sink.records[0]
        assert sink.records[1]["cell"] == "cell-7"
        assert "cell" not in sink.records[2]

    def test_emit_mirrors_into_telemetry_trace(self, tmp_path):
        """Decision lines interleave with spans in one telemetry file."""
        trace = tmp_path / "trace.jsonl"
        with telemetry.record(trace):
            with obs.use(obs.ListSink()):
                with telemetry.span("experiment.period"):
                    obs.emit({"t": 0})
        types = [json.loads(line)["type"]
                 for line in trace.read_text().splitlines()]
        assert "decision" in types
        assert "span" in types

    def test_make_tracer_requires_sink_and_capable_agent(self):
        _, agent = make_env_agent()
        assert obs.make_tracer(agent) is None  # no sink installed
        with obs.use(obs.ListSink()):
            assert obs.make_tracer(object()) is None  # no attach_tracer
            tracer = obs.make_tracer(agent, oracle_cost=50.0)
            assert isinstance(tracer, DecisionTracer)
            assert tracer.oracle_cost == 50.0


# -- drift monitor -------------------------------------------------------


class TestDriftMonitor:
    def test_warmup_never_flags(self):
        monitor = DriftMonitor(window=10, min_periods=4)
        for _ in range(3):
            result = monitor.update([0.5, 0.5])
            assert result["flag"] is False
            assert np.isnan(result["score"])
            assert result["dim"] is None

    def test_stable_stream_not_flagged(self):
        rng = np.random.default_rng(0)
        monitor = DriftMonitor(window=20, z_threshold=4.0, min_periods=5)
        flags = [
            monitor.update(0.5 + 0.05 * rng.standard_normal(3))["flag"]
            for _ in range(60)
        ]
        assert sum(flags) == 0
        assert monitor.episodes == 0

    def test_jump_is_flagged_on_offending_dimension(self):
        monitor = DriftMonitor(window=10, z_threshold=4.0, min_periods=4)
        rng = np.random.default_rng(1)
        for _ in range(10):
            monitor.update([0.2 + 0.02 * rng.standard_normal(), 0.8])
        result = monitor.update([0.95, 0.8])  # dim 0 jumps
        assert result["flag"] is True
        assert result["dim"] == 0
        assert result["score"] > 4.0

    def test_episode_counts_runs_not_periods(self):
        monitor = DriftMonitor(window=30, z_threshold=4.0, min_periods=4)
        for _ in range(30):
            monitor.update([0.2])
        # Two consecutive outliers: the second still clears the
        # threshold (one contaminant barely inflates a 30-wide window),
        # but the sustained excursion counts as ONE episode.
        assert monitor.update([0.9])["flag"]
        assert monitor.update([0.9])["flag"]
        assert monitor.episodes == 1
        # Window absorbed the outliers; a long calm stretch re-arms it.
        for _ in range(30):
            monitor.update([0.2])
        assert monitor.update([0.9])["flag"]
        assert monitor.episodes == 2

    def test_validation(self):
        with pytest.raises(ValueError, match="window"):
            DriftMonitor(window=1)
        with pytest.raises(ValueError, match="z_threshold"):
            DriftMonitor(z_threshold=0.0)
        with pytest.raises(ValueError, match="min_periods"):
            DriftMonitor(min_periods=1)
        monitor = DriftMonitor()
        with pytest.raises(ValueError, match="non-empty"):
            monitor.update([])
        monitor.update([0.1, 0.2])
        with pytest.raises(ValueError, match="dimension changed"):
            monitor.update([0.1])


# -- decision tracer -----------------------------------------------------


class TestDecisionTracer:
    def test_one_record_per_period_with_full_schema(self):
        records, log = traced_run()
        assert len(records) == N_PERIODS
        for t, record in enumerate(records):
            assert record["type"] == "decision"
            assert record["t"] == t
            assert record["degraded"] is False
            assert record["safe_set"]["grid"] == 4**4
            assert 1 <= record["safe_set"]["size"] <= 4**4
            assert 0.0 < record["safe_set"]["fraction"] <= 1.0
            # margins of the chosen control exist every healthy period
            assert isinstance(record["margins"]["delay_slack_s"], float)
            assert isinstance(record["margins"]["map_slack"], float)
            acq = record["acquisition"]
            assert acq["price_of_safety"] >= 0.0
            assert acq["chosen_lcb"] == pytest.approx(
                acq["best_lcb"] + acq["price_of_safety"]
            )
            assert set(record["calibration"]) == set(record["gp"])
            for snap in record["calibration"].values():
                assert snap["z"] == 2.0
                assert snap["expected"] == pytest.approx(0.9544997, rel=1e-5)
            # gp state is captured at decision time, before the round's
            # observation lands, so counts trail t by design
            for head_stats in record["gp"].values():
                assert head_stats["n"] >= 0
                assert head_stats["noise_variance"] > 0.0
            assert set(record["drift"]) == {"flag", "score", "dim"}
            assert record["outcome"]["cost"] == pytest.approx(log.cost[t])
            assert record["regret"]["instant"] >= 0.0
            assert len(record["control"]) == 4

    def test_calibration_accumulates_one_step_ahead(self):
        records, _ = traced_run()
        final = records[-1]["calibration"]
        # First record was scored before any coverage existed beyond its
        # own round; by the end every clean round has contributed.
        assert all(snap["n"] >= N_PERIODS - 2 for snap in final.values())
        ns = [records[t]["calibration"]["cost"]["n"]
              for t in range(N_PERIODS)]
        assert ns == sorted(ns)  # monotone: a streaming tally

    def test_cumulative_regret_is_monotone(self):
        records, _ = traced_run(oracle_cost=120.0)
        cum = [r["regret"]["cumulative"] for r in records]
        assert all(b >= a for a, b in zip(cum, cum[1:]))
        assert cum[-1] == pytest.approx(
            sum(r["regret"]["instant"] for r in records)
        )

    def test_no_oracle_means_no_regret_block(self):
        env, agent = make_env_agent()
        sink = obs.ListSink()
        with obs.use(sink):
            run_agent(env, agent, 3)
        assert all(r["regret"] is None for r in sink.records)

    def test_traced_run_is_bit_identical_to_untraced(self):
        """The acceptance criterion: tracing never perturbs the run."""
        env_a, agent_a = make_env_agent(seed=7)
        untraced = run_agent(env_a, agent_a, N_PERIODS)
        records, traced = traced_run(seed=7)
        assert traced.cost == untraced.cost
        assert traced.delay_s == untraced.delay_s
        assert traced.map_score == untraced.map_score
        assert traced.resolution == untraced.resolution
        assert traced.airtime == untraced.airtime
        assert traced.gpu_speed == untraced.gpu_speed
        assert traced.mcs_fraction == untraced.mcs_fraction
        assert len(records) == N_PERIODS

    def test_detach_stops_emission(self):
        env, agent = make_env_agent()
        sink = obs.ListSink()
        with obs.use(sink):
            run_agent(env, agent, 2)
        assert len(sink.records) == 2
        with obs.use(sink):
            # run_agent detached the tracer on exit: a bare loop with no
            # tracer attached emits nothing.
            context = env.observe_context()
            policy = agent.select(context)
            agent.observe(context, policy, env.step(policy))
        assert len(sink.records) == 2

    def test_runlog_carries_summary(self):
        records, log = traced_run()
        assert log.decisions is not None
        assert log.decisions["periods"] == N_PERIODS
        assert log.decisions["records"] == N_PERIODS
        assert set(log.decisions["coverage"]) == set(
            records[-1]["calibration"]
        )
        assert log.decisions["cumulative_regret"] == pytest.approx(
            records[-1]["regret"]["cumulative"]
        )

    def test_degraded_hook_emits_minimal_record(self):
        env, agent = make_env_agent()
        sink = obs.ListSink()
        with obs.use(sink):
            tracer = obs.make_tracer(agent)
            tracer.on_degraded(env.observe_context())
            from repro.testbed.config import ControlPolicy
            policy = ControlPolicy.max_resources()
            observation = env.step(policy)
            tracer.on_observe(env.observe_context(), policy, observation,
                              cost=123.0, quarantine_reason=None)
        (record,) = sink.records
        assert record["degraded"] is True
        assert record["safe_set"]["size"] == 1
        assert record["margins"] == {"delay_slack_s": None, "map_slack": None}
        assert record["acquisition"] is None
        assert tracer.summary()["degraded_rounds"] == 1
        # Degraded rounds must not pollute the calibration tallies.
        assert all(cal.n == 0 for cal in tracer.calibration.values())

    def test_observe_without_select_still_emits(self):
        """A direct observe() (no select) yields a minimal record."""
        from repro.testbed.config import ControlPolicy

        env, agent = make_env_agent()
        sink = obs.ListSink()
        with obs.use(sink):
            tracer = obs.make_tracer(agent)
            agent.attach_tracer(tracer)
            policy = ControlPolicy.max_resources()
            context = env.observe_context()
            agent.observe(context, policy, env.step(policy))
            agent.attach_tracer(None)
        (record,) = sink.records
        assert record["chosen_index"] is None
        assert record["safe_set"] is None
        assert record["outcome"]["cost"] is not None


# -- sweep integration ---------------------------------------------------


@pytest.fixture
def regret_spec():
    spec = spec_registry.get("regret")
    params = spec.resolve({"delta2": (1.0, 8.0), "periods": 3, "levels": 3})
    return spec, params  # 2 cells, 3 periods each


class TestSweepDecisions:
    def test_decision_path_merges_cells_in_order(self, regret_spec, tmp_path):
        spec, params = regret_spec
        path = tmp_path / "decisions.jsonl"
        result = parallel.run_sweep(
            spec, params, seed=3, jobs=1, out=tmp_path, decision_path=path
        )
        cells = [c.cell_id for c in result.cells]
        records = [json.loads(line)
                   for line in path.read_text().splitlines()]
        assert len(records) == len(cells) * 3
        assert [r["cell"] for r in records] == [
            cell for cell in cells for _ in range(3)
        ]
        assert [r["t"] for r in records] == [0, 1, 2] * len(cells)
        # Regret cells know the oracle, so traces carry the regret block.
        assert all(r["regret"]["instant"] >= 0.0 for r in records)

    def test_pool_matches_serial(self, regret_spec, tmp_path):
        spec, params = regret_spec
        serial = tmp_path / "serial.jsonl"
        pooled = tmp_path / "pooled.jsonl"
        parallel.run_sweep(spec, params, seed=3, jobs=1, out=None,
                           decision_path=serial)
        parallel.run_sweep(spec, params, seed=3, jobs=2, out=None,
                           decision_path=pooled)
        assert serial.read_text() == pooled.read_text()

    def test_resume_preserves_decisions(self, regret_spec, tmp_path):
        spec, params = regret_spec
        first = tmp_path / "first.jsonl"
        second = tmp_path / "second.jsonl"
        parallel.run_sweep(spec, params, seed=3, jobs=1, out=tmp_path,
                           decision_path=first)
        result = parallel.run_sweep(spec, params, seed=3, jobs=1,
                                    out=tmp_path, decision_path=second)
        assert result.resumed == len(result.cells)
        assert second.read_text() == first.read_text()

    def test_untraced_sweep_writes_nothing(self, regret_spec, tmp_path):
        spec, params = regret_spec
        result = parallel.run_sweep(spec, params, seed=3, jobs=1, out=None)
        assert all(c.decisions is None for c in result.cells)


class TestCustomLoopExperiments:
    """Experiments with hand-rolled loops must trace too."""

    def test_tariff_traces_decoupled_agent(self):
        """Tariff runs the decoupled-power GP path under tracing."""
        from repro.experiments.tariff import TariffSetting, run_tariff_tracking

        setting = TariffSetting(n_periods=6, n_levels=3)
        sink = obs.ListSink()
        with obs.use(sink):
            log = run_tariff_tracking(decoupled=True, setting=setting, seed=0)
        assert len(sink.records) == 6
        record = sink.records[-1]
        # Decoupled agents carry the per-power heads end to end.
        assert {"server_power", "bs_power"} <= set(record["calibration"])
        assert record["acquisition"]["price_of_safety"] >= 0.0
        assert log.decisions["periods"] == 6

    def test_tariff_kpis_bit_identical_under_tracing(self):
        from repro.experiments.tariff import TariffSetting, run_tariff_tracking

        setting = TariffSetting(n_periods=6, n_levels=3)
        untraced = run_tariff_tracking(decoupled=True, setting=setting, seed=1)
        with obs.use(obs.ListSink()):
            traced = run_tariff_tracking(
                decoupled=True, setting=setting, seed=1
            )
        assert traced.cost == untraced.cost
        assert traced.resolution == untraced.resolution

    def test_multiservice_labels_each_slice(self):
        from repro.experiments.multiservice import (
            MultiServiceSetting,
            run_per_slice_edgebol,
        )

        setting = MultiServiceSetting(n_periods=4, n_levels=3)
        sink = obs.ListSink()
        with obs.use(sink):
            ar_log, sv_log = run_per_slice_edgebol(setting=setting, seed=0)
        assert len(sink.records) == 2 * 4
        labels = {r["agent"] for r in sink.records}
        assert labels == {"ar", "surveillance"}
        assert ar_log.decisions["periods"] == 4
        assert sv_log.decisions["periods"] == 4
        for label in labels:
            ts = [r["t"] for r in sink.records if r["agent"] == label]
            assert ts == [0, 1, 2, 3]


# -- diagnose ------------------------------------------------------------


def synthetic_records(n=30):
    """A hand-built trace exercising every anomaly detector."""
    records = []
    for t in range(n):
        records.append({
            "type": "decision",
            "t": t,
            "degraded": 10 <= t < 13,
            "quarantined": "stale" if t == 5 else None,
            "safe_set": {"size": 4 + t, "grid": 256,
                         "fraction": (4 + t) / 256},
            "margins": {
                # six consecutive negative delay margins from t=20
                "delay_slack_s": -0.05 if 20 <= t < 26 else 0.1,
                "map_slack": 0.02,
            },
            "acquisition": {"chosen_lcb": 50.0, "best_lcb": 45.0,
                            "best_index": 0, "price_of_safety": 5.0},
            "calibration": {
                "cost": {"n": t + 1, "z": 2.0, "coverage": 0.70,
                         "expected": 0.954, "error_mean": 0.0,
                         "error_std": 1.0},
            },
            "gp": {"cost": {"n": t + 1, "noise_variance": 1.0,
                            "output_scale": 100.0}},
            "drift": {"flag": t in (15, 16), "score": 5.0 if t in (15, 16)
                      else 0.5, "dim": 0 if t in (15, 16) else None},
            "outcome": {"cost": 60.0, "delay_s": 0.45 if t == 7 else 0.2,
                        "map_score": 0.8, "d_max_s": 0.4, "rho_min": 0.5,
                        "delay_violation": t == 7, "map_violation": False},
            "regret": {"instant": 1.0, "cumulative": float(t + 1)},
            "robustness": {"quarantined": 1, "degraded_periods": 3},
        })
    return records


class TestDiagnose:
    def test_load_skips_blank_and_foreign_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            '{"type": "span", "name": "x"}\n'
            "\n"
            '{"type": "decision", "t": 0}\n'
            '{"type": "metric", "name": "y"}\n'
            '{"type": "decision", "t": 1}\n'
        )
        records = diagnose.load_decisions(path)
        assert [r["t"] for r in records] == [0, 1]

    def test_load_names_bad_line(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"type": "decision", "t": 0}\nnot json\n')
        with pytest.raises(ValueError, match=r"trace\.jsonl:2"):
            diagnose.load_decisions(path)

    def test_detects_every_anomaly_kind(self):
        flags = diagnose.detect_anomalies(synthetic_records())
        kinds = {f["kind"] for f in flags}
        assert kinds == {
            "coverage_below_nominal", "persistent_negative_margin",
            "drift_episode", "degraded_stretch",
        }
        margin = next(f for f in flags
                      if f["kind"] == "persistent_negative_margin")
        assert margin["constraint"] == "delay"
        assert (margin["start_t"], margin["end_t"]) == (20, 25)
        assert margin["length"] == 6
        drift = next(f for f in flags if f["kind"] == "drift_episode")
        assert drift["peak_score"] == 5.0
        degraded = next(f for f in flags if f["kind"] == "degraded_stretch")
        assert (degraded["start_t"], degraded["end_t"]) == (10, 12)

    def test_short_negative_runs_not_flagged(self):
        records = synthetic_records()
        for record in records:
            t = record["t"]
            record["margins"]["delay_slack_s"] = (
                -0.05 if 20 <= t < 23 else 0.1  # run of 3 < threshold 5
            )
        kinds = {f["kind"] for f in diagnose.detect_anomalies(records)}
        assert "persistent_negative_margin" not in kinds

    def test_coverage_needs_enough_samples(self):
        records = synthetic_records(n=10)  # final n=10 < 20
        kinds = {f["kind"] for f in diagnose.detect_anomalies(records)}
        assert "coverage_below_nominal" not in kinds

    def test_dashboard_renders_all_sections(self):
        records = synthetic_records()
        text = diagnose.render_dashboard(records)
        assert "Safe-set fraction" in text
        assert "Running z-score coverage" in text
        assert "delay slack" in text
        assert "Event timeline" in text
        assert "Cumulative regret" in text
        assert "coverage_below_nominal" in text
        assert "legend: R restart  C breaker  D degraded" in text

    def test_dashboard_on_empty_trace(self):
        assert "empty" in diagnose.render_dashboard([])

    def test_dashboard_on_real_trace(self):
        """A genuine traced run renders without error and flags nothing
        catastrophic."""
        records, _ = traced_run()
        text = diagnose.render_dashboard(records)
        assert "Safe-set fraction" in text
        assert "Cumulative regret" in text

    def test_diagnose_path_roundtrip(self, tmp_path):
        path = tmp_path / "d.jsonl"
        with obs.use(path):
            for record in synthetic_records():
                obs.emit(record)
        text, anomalies = diagnose.diagnose_path(path)
        assert "Anomaly flags:" in text
        assert anomalies == diagnose.detect_anomalies(
            diagnose.load_decisions(path)
        )


# -- CLI -----------------------------------------------------------------


class TestCli:
    def write_trace(self, tmp_path, records):
        path = tmp_path / "trace.jsonl"
        with path.open("w") as handle:
            for record in records:
                handle.write(json.dumps(record) + "\n")
        return path

    def test_diagnose_renders_dashboard(self, tmp_path, capsys):
        path = self.write_trace(tmp_path, synthetic_records())
        assert cli.main(["diagnose", str(path)]) == 0
        out = capsys.readouterr().out
        assert "Event timeline" in out

    def test_diagnose_json_output(self, tmp_path, capsys):
        path = self.write_trace(tmp_path, synthetic_records())
        assert cli.main(["diagnose", str(path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["records"] == 30
        kinds = {f["kind"] for f in payload["anomalies"]}
        assert "coverage_below_nominal" in kinds

    def test_diagnose_fail_on_anomaly(self, tmp_path, capsys):
        bad = self.write_trace(tmp_path, synthetic_records())
        assert cli.main(["diagnose", str(bad), "--fail-on-anomaly"]) == 1
        assert "anomaly flag(s)" in capsys.readouterr().err
        clean = tmp_path / "clean.jsonl"
        records, _ = traced_run(periods=3)
        clean.write_text(
            "".join(json.dumps(r) + "\n" for r in records)
        )
        assert cli.main(["diagnose", str(clean), "--fail-on-anomaly"]) == 0

    def test_diagnose_missing_file(self, tmp_path):
        with pytest.raises(SystemExit, match="diagnose"):
            cli.main(["diagnose", str(tmp_path / "absent.jsonl")])

    def test_trace_decisions_end_to_end(self, tmp_path, capsys):
        """`repro run regret --trace-decisions` then `repro diagnose`."""
        status = cli.main([
            "run", "regret", "--sweep", "delta2=1.0",
            "--set", "periods=3", "--set", "levels=3",
            "--out", str(tmp_path), "--trace-decisions",
        ])
        assert status == 0
        out = capsys.readouterr().out
        default = tmp_path / "regret_decisions.jsonl"
        assert default.exists()
        assert "wrote decision trace" in out
        records = diagnose.load_decisions(default)
        assert len(records) == 3
        for record in records:
            assert record["safe_set"]["fraction"] > 0.0
            assert record["calibration"]
            assert record["margins"]
            assert record["regret"] is not None
        assert cli.main(["diagnose", str(default)]) == 0

    def test_trace_decisions_explicit_path(self, tmp_path, capsys):
        explicit = tmp_path / "custom.jsonl"
        status = cli.main([
            "run", "regret", "--sweep", "delta2=1.0",
            "--set", "periods=2", "--set", "levels=3",
            "--out", str(tmp_path), "--trace-decisions", str(explicit),
        ])
        assert status == 0
        capsys.readouterr()
        assert explicit.exists()
        assert len(diagnose.load_decisions(explicit)) == 2

    def test_resolve_decision_path(self, tmp_path):
        spec = spec_registry.get("regret")
        assert cli.resolve_decision_path(None, spec, tmp_path) is None
        assert cli.resolve_decision_path(
            cli._DEFAULT_DECISIONS, spec, tmp_path
        ) == tmp_path / "regret_decisions.jsonl"
        explicit = tmp_path / "x.jsonl"
        assert cli.resolve_decision_path(explicit, spec, tmp_path) == explicit
