"""Fleet supervision, crash-recovery and resilience-accounting tests.

The determinism gate lives here: a supervised fleet run under a chaos
plan (crashes, stalls, corrupt snapshots, mailbox floods) must produce
per-cell RunLogs and alert streams **bit-identical** to a fault-free
run at the same seed — warm restores replay, they do not re-randomise.
See ``docs/ROBUSTNESS.md`` ("Fleet resilience").
"""

import json

import pytest

from repro import faults, obs
from repro.core import EdgeBOL, state
from repro.experiments.fleet import run_fleet_cell_sim, run_fleet_spec_cell
from repro.faults import FaultPlan, FaultSpec
from repro.obs import diagnose
from repro.oran.alerts import AlertRouter, AlertRule
from repro.oran.load import FleetLoadModel
from repro.oran.runtime import FleetRuntime
from repro.oran.supervisor import FleetSupervisor, SupervisorPolicy
from repro.testbed.config import CostWeights, ServiceConstraints, TestbedConfig
from repro.testbed.scenarios import static_scenario
from repro.utils.rng import seed_tree

SEED = 42


def make_runtime(n_cells, seed=SEED, levels=4, **kwargs):
    """A fleet wired exactly like ``run_fleet_cell_sim`` builds one."""
    testbed = TestbedConfig(n_levels=levels)
    grid = testbed.control_grid()
    rngs = seed_tree(seed, n_cells + 1)
    cells = [
        (
            static_scenario(n_users=1, rng=rngs[i], config=testbed),
            EdgeBOL(grid, ServiceConstraints(), CostWeights(1.0, 1.0)),
        )
        for i in range(n_cells)
    ]
    load = FleetLoadModel(n_cells, profile="diurnal", seed=rngs[n_cells])
    return FleetRuntime(cells, load_model=load, **kwargs)


def series(result):
    """The full bit-comparable trajectory of every cell."""
    return {
        cell_id: (log.cost, log.delay_s, log.bs_power_w, log.snr_db,
                  log.safe_set_size)
        for cell_id, log in result.logs.items()
    }


def run_chaos(plan, n_cells=3, n_periods=10, snapshot_every=4, **kwargs):
    with faults.use(plan):
        return run_fleet_cell_sim(
            n_cells=n_cells, n_periods=n_periods, seed=SEED, levels=4,
            supervise=True, snapshot_every=snapshot_every, **kwargs,
        )


@pytest.fixture(scope="module")
def clean_run():
    """Fault-free supervised baseline every chaos run must reproduce."""
    return run_fleet_cell_sim(
        n_cells=3, n_periods=10, seed=SEED, levels=4,
        supervise=True, snapshot_every=4,
    )


class TestCrashRecovery:
    def test_warm_restore_replays_bit_identically(self, clean_run):
        plan = FaultPlan(specs=(
            FaultSpec(kind="cell", mode="crash", target="cell001",
                      at=(6,), max_events=1),
        ))
        chaos = run_chaos(plan)
        assert series(chaos) == series(clean_run)
        assert chaos.alerts == clean_run.alerts
        stats = chaos.recovery["cell001"]
        assert stats["crashes"] == 1 and stats["restarts"] == 1
        assert stats["recovered"] and stats["quarantined"] is None
        assert chaos.replayed > 0 and chaos.supervised
        assert chaos.partial_cells == {}
        assert chaos.decisions == clean_run.decisions

    def test_unsupervised_crash_leaves_partial_accounting(self):
        plan = FaultPlan(specs=(
            FaultSpec(kind="cell", mode="crash", target="cell000",
                      at=(5,), max_events=1),
        ))
        with faults.use(plan):
            result = run_fleet_cell_sim(
                n_cells=2, n_periods=10, seed=SEED, levels=4,
                supervise=False,
            )
        partial = result.partial_cells["cell000"]
        assert partial == {"rows": 5, "missed": 5, "reason": "crash"}
        assert len(result.logs["cell000"]) == 5
        assert len(result.logs["cell001"]) == 10
        assert not result.recovery["cell000"]["recovered"]

    def test_faults_keep_firing_when_supervision_is_off(self):
        """The chaos schedule is plan-driven, not supervision-driven."""
        plan = FaultPlan(specs=(
            FaultSpec(kind="cell", mode="crash", target="cell000",
                      at=(3,), max_events=1),
        ))
        with faults.use(plan):
            off = run_fleet_cell_sim(n_cells=1, n_periods=6, seed=SEED,
                                     levels=4, supervise=False)
        assert off.recovery["cell000"]["crashes"] == 1


class TestStallDetection:
    def test_stall_is_detected_and_recovered(self, clean_run):
        plan = FaultPlan(specs=(
            FaultSpec(kind="loop", mode="stall", target="cell002",
                      at=(3,), max_events=1),
        ))
        sink = obs.ListSink()
        with obs.use(sink):
            chaos = run_chaos(plan)
        assert series(chaos) == series(clean_run)
        stats = chaos.recovery["cell002"]
        assert stats["stalls"] == 1 and stats["recovered"]
        events = [(r["event"], r["t"]) for r in sink.records
                  if r.get("agent") == "cell002" and "event" in r]
        # Last heartbeat lands at t=2; 5 - 2 > stall_timeout 2.
        assert ("cell_stall", 5) in events
        assert any(name == "recovery" for name, _ in events)

    def test_stall_at_last_period_is_recovered_in_finish(self, clean_run):
        """No lost rows even when the detector never gets to fire."""
        plan = FaultPlan(specs=(
            FaultSpec(kind="loop", mode="stall", target="cell000",
                      at=(9,), max_events=1),
        ))
        chaos = run_chaos(plan)
        assert series(chaos) == series(clean_run)
        assert chaos.partial_cells == {}
        stats = chaos.recovery["cell000"]
        assert stats["stalls"] == 1 and stats["restarts"] == 1


class TestSnapshotCorruption:
    def test_corrupt_checkpoint_falls_back_to_older(self, clean_run):
        plan = FaultPlan(specs=(
            # Checkpoint opportunities of cell001: 0 = the t=0 anchor,
            # 1 = horizon 4, 2 = horizon 8.  Corrupting opportunity 1
            # forces the t=6 crash back onto the anchor.
            FaultSpec(kind="snapshot", mode="corrupt", target="cell001",
                      at=(1,), max_events=1),
            FaultSpec(kind="cell", mode="crash", target="cell001",
                      at=(6,), max_events=1),
        ))
        chaos = run_chaos(plan)
        assert series(chaos) == series(clean_run)
        stats = chaos.recovery["cell001"]
        assert stats["snapshot_corrupt"] == 1
        assert stats["recovered"] and stats["quarantined"] is None

    def test_all_snapshots_corrupt_quarantines(self):
        plan = FaultPlan(specs=(
            FaultSpec(kind="snapshot", mode="corrupt", target="cell000",
                      probability=1.0),
            FaultSpec(kind="cell", mode="crash", target="cell000",
                      at=(5,), max_events=1),
        ))
        chaos = run_chaos(plan, n_cells=2)
        stats = chaos.recovery["cell000"]
        assert stats["quarantined"] is not None
        assert "snapshot" in stats["quarantined"]
        partial = chaos.partial_cells["cell000"]
        assert partial["rows"] + partial["missed"] == 10


class TestCircuitBreaker:
    def test_flood_trips_breaker_without_losing_rows(self):
        plan = FaultPlan(specs=(
            FaultSpec(kind="mailbox", mode="overflow", target="cell001",
                      at=(2,), magnitude=96.0, max_events=1),
        ))
        first = run_chaos(plan)
        stats = first.recovery["cell001"]
        assert stats["breaker_trips"] == 1
        assert stats["shed_periods"] > 0
        assert all(len(log) == 10 for log in first.logs.values())
        assert first.partial_cells == {}
        second = run_chaos(plan)
        assert series(first) == series(second)  # chaos replays bit-identically


class TestQuarantine:
    def test_repeated_crashes_escalate_to_quarantine(self):
        plan = FaultPlan(specs=(
            FaultSpec(kind="cell", mode="crash", target="cell000",
                      at=(2, 3, 4), max_events=3),
        ))
        policy = SupervisorPolicy(snapshot_every=2, max_restarts=2,
                                  restart_window=50)
        with faults.use(plan):
            runtime = make_runtime(2, supervise=True,
                                   supervisor_policy=policy)
            result = runtime.run(8)
        stats = result.recovery["cell000"]
        assert stats["quarantined"] is not None
        assert stats["crashes"] == 3 and stats["restarts"] == 2
        partial = result.partial_cells["cell000"]
        assert partial["reason"] == stats["quarantined"]
        assert partial["rows"] + partial["missed"] == 8
        assert len(result.logs["cell001"]) == 8  # the healthy cell is untouched

    def test_row_invariant_is_asserted(self):
        runtime = make_runtime(1, supervise=True)
        result = runtime.run(4)
        assert len(result.logs["cell000"]) == 4
        # Sabotage the accounting: a short log with no partial entry
        # must be caught, not silently reported.
        runtime.cells[0].log.cost.pop()
        with pytest.raises(RuntimeError, match="accounting"):
            runtime.run(0)


class TestConstruction:
    def test_supervised_fleets_require_batch_size_1(self):
        with pytest.raises(ValueError, match="batch_size"):
            make_runtime(2, supervise=True, batch_size=2)

    def test_snapshot_every_and_policy_are_exclusive(self):
        with pytest.raises(ValueError, match="snapshot_every"):
            make_runtime(1, supervise=True, snapshot_every=4,
                         supervisor_policy=SupervisorPolicy())

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            SupervisorPolicy(snapshot_every=0)
        with pytest.raises(ValueError):
            SupervisorPolicy(backoff_factor=0.5)

    def test_fleet_spec_params_default_to_unsupervised(self):
        rows = run_fleet_spec_cell(
            {"cells": 1, "periods": 3, "levels": 4, "users": 1,
             "load": "diurnal", "policy": "block", "batch": 1},
            seed=SEED,
        )
        assert len(rows) == 1
        assert rows[0]["recovered"] is False and rows[0]["partial"] is False


class TestCommittedChaosPlan:
    """Mirror of the CI fleet-chaos gate, against the committed plan."""

    def test_committed_plan_recovers_every_cell(self):
        with open("examples/faults/fleet_chaos_plan.json") as handle:
            plan = FaultPlan.from_dict(json.load(handle))
        runs = [
            run_chaos(plan, n_cells=8, n_periods=12, snapshot_every=3)
            for _ in range(2)
        ]
        first, second = runs
        assert series(first) == series(second)  # bit-identical rerun
        assert first.partial_cells == {}  # zero lost rows
        assert all(len(log) == 12 for log in first.logs.values())
        recovered = {c for c, s in first.recovery.items() if s["recovered"]}
        assert recovered == {"cell002", "cell005", "cell006"}
        assert first.recovery["cell002"]["snapshot_corrupt"] == 1
        assert first.recovery["cell001"]["breaker_trips"] == 1


class TestAlertContinuity:
    """AlertRouter sustain/min_gap state must survive a cell restart."""

    @staticmethod
    def _rule():
        return AlertRule(
            name="bad", predicate=lambda s: s["bad"],
            message=lambda s: "bad cell", sustain=2, min_gap=3,
        )

    @staticmethod
    def _stream(router, flags, process_mask):
        """Feed samples where ``process_mask`` allows; alert fingerprints."""
        raised = []
        for t, bad in enumerate(flags):
            if not process_mask[t]:
                continue
            for alert in router.process({"cell": "cell000", "t": t,
                                         "bad": bad}):
                raised.append((alert.rule, alert.cell, alert.t))
        return raised

    def test_replay_does_not_double_fire(self):
        try:
            from hypothesis import given, settings
            from hypothesis import strategies as st
        except ImportError:  # pragma: no cover - hypothesis is in the image
            pytest.skip("hypothesis unavailable")

        @settings(max_examples=200, deadline=None)
        @given(
            flags=st.lists(st.booleans(), min_size=2, max_size=40),
            data=st.data(),
        )
        def check(flags, data):
            n = len(flags)
            crash_t = data.draw(st.integers(0, n - 1), label="crash_t")
            uninterrupted = self._stream(
                AlertRouter((self._rule(),)), flags, [True] * n
            )
            # The supervised pipeline: periods before the crash were
            # processed live; the warm restore replays them with alert
            # processing suppressed; catch-up and onwards process again.
            router = AlertRouter((self._rule(),))
            live = [t < crash_t for t in range(n)]
            catchup = [t >= crash_t for t in range(n)]
            restarted = (
                self._stream(router, flags, live)
                + self._stream(router, flags, catchup)
            )
            assert restarted == uninterrupted

        check()

    def test_sustain_window_spans_a_restart(self):
        """A pending streak at crash time still fires exactly once."""
        flags = [False, True, True, False]
        uninterrupted = self._stream(
            AlertRouter((self._rule(),)), flags, [True] * 4
        )
        router = AlertRouter((self._rule(),))
        restarted = (
            self._stream(router, flags, [True, True, False, False])
            + self._stream(router, flags, [False, False, True, True])
        )
        assert restarted == uninterrupted == [("bad", "cell000", 2)]


class TestSupervisorUnit:
    def test_checkpoint_ring_keeps_anchor_plus_newest(self):
        runtime = make_runtime(
            1, supervise=True,
            supervisor_policy=SupervisorPolicy(snapshot_every=2,
                                               snapshot_ring=2),
        )
        runtime.run(12)
        books = runtime.supervisor._books[0]
        horizons = [t for t, _ in books.snapshots]
        assert horizons == [0, 10, 12]  # anchor + newest snapshot_ring
        for _, blob in books.snapshots:
            payload = state.decode_snapshot(blob)
            assert payload["format"] == state.SNAPSHOT_FORMAT

    def test_heartbeat_tracks_progress(self):
        runtime = make_runtime(1, supervise=True)
        runtime.run(3)
        assert runtime.supervisor._books[0].last_progress == 2

    def test_supervisor_exports(self):
        import repro.oran as oran
        assert oran.FleetSupervisor is FleetSupervisor
        assert oran.SupervisorPolicy is SupervisorPolicy


class TestDiagnoseSupervisionEvents:
    @staticmethod
    def _events():
        base = [
            {"event": "cell_crash", "t": 4, "agent": "cell001"},
            {"event": "recovery", "t": 4, "agent": "cell001",
             "snapshot_t": 4, "replayed": 0, "caught_up": 1, "restarts": 1},
            {"event": "breaker_open", "t": 6, "agent": "cell001",
             "overload": 30},
            {"event": "breaker_close", "t": 9, "agent": "cell001"},
        ]
        storm = []
        for k in range(5):
            storm.append({"event": "recovery", "t": 10 + k,
                          "agent": "cell003", "restarts": k + 1})
        return base + storm

    def test_split_events_partitions_records(self):
        records = [{"type": "decision", "t": 0}] + self._events()
        periods, events = diagnose.split_events(records)
        assert len(periods) == 1 and len(events) == len(self._events())

    def test_recovery_storm_is_flagged(self):
        flags = diagnose.detect_anomalies(self._events())
        storms = [f for f in flags if f["kind"] == "recovery_storm"]
        assert len(storms) == 1
        assert storms[0]["agent"] == "cell003"
        assert storms[0]["restarts"] >= 4

    def test_single_recovery_is_not_a_storm(self):
        flags = diagnose.detect_anomalies(self._events()[:2])
        assert not [f for f in flags if f["kind"] == "recovery_storm"]

    def test_dashboard_marks_restarts_and_breaker(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with path.open("w") as handle:
            for t in range(12):
                handle.write(json.dumps({
                    "type": "decision", "t": t, "agent": "cell001",
                    "outcome": {"cost": 50.0, "delay_violation": False,
                                "map_violation": False},
                }) + "\n")
            for event in self._events():
                # obs.emit stamps every sink record ``type: "decision"``,
                # events included — mirror the on-disk shape exactly.
                handle.write(json.dumps({"type": "decision", **event}) + "\n")
        text, anomalies = diagnose.diagnose_path(path)
        assert "Supervision events" in text
        assert "recovery=" in text and "breaker_open=" in text
        assert any(f["kind"] == "recovery_storm" for f in anomalies)
        timeline = [line for line in text.splitlines()
                    if line.startswith("t=")]
        assert len(timeline) == 1
        # t=4: crash+recovery -> R; t=6 breaker_open, t=9 close -> C.
        assert timeline[0].endswith("....R.C..C..")

    def test_events_only_trace_still_renders(self):
        text = diagnose.render_dashboard(self._events())
        assert "supervision events only" in text
        assert '"event": "cell_crash"' in text
