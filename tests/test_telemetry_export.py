"""Telemetry export: Prometheus exposition and buffered JSONL sink."""

import pytest

from repro.telemetry.export import (
    JsonlSink,
    prometheus_exposition,
    read_jsonl,
)


def snapshot(**over):
    """A metrics snapshot in the runtime's shape, with overridable parts."""
    base = {
        "counters": {"oran.bus.delivered": 240, "fleet.decisions": 48},
        "gauges": {"fleet.cells": 4.0},
        "histograms": {
            "core.gp.add_s": {
                "buckets": [0.001, 0.01, 0.1],
                "counts": [3, 2, 1, 1],
                "count": 7,
                "sum": 0.5,
                "min": 0.0001,
                "max": 0.2,
                "mean": 0.5 / 7,
            },
        },
    }
    base.update(over)
    return base


class TestPrometheusExposition:
    def test_counters_get_total_suffix_and_type_line(self):
        text = prometheus_exposition(snapshot())
        assert "# TYPE repro_oran_bus_delivered_total counter" in text
        assert "repro_oran_bus_delivered_total 240" in text
        assert "repro_fleet_decisions_total 48" in text

    def test_gauges_rendered(self):
        text = prometheus_exposition(snapshot())
        assert "# TYPE repro_fleet_cells gauge" in text
        assert "repro_fleet_cells 4" in text

    def test_histogram_buckets_cumulative_with_inf(self):
        lines = prometheus_exposition(snapshot()).splitlines()
        buckets = [l for l in lines if "core_gp_add_s_bucket" in l]
        assert buckets == [
            'repro_core_gp_add_s_bucket{le="0.001"} 3',
            'repro_core_gp_add_s_bucket{le="0.01"} 5',
            'repro_core_gp_add_s_bucket{le="0.1"} 6',
            'repro_core_gp_add_s_bucket{le="+Inf"} 7',
        ]
        assert "repro_core_gp_add_s_sum 0.5" in lines
        assert "repro_core_gp_add_s_count 7" in lines

    def test_ordering_is_deterministic_and_sorted(self):
        text = prometheus_exposition(snapshot())
        assert text == prometheus_exposition(snapshot())
        samples = [
            line for line in text.splitlines() if not line.startswith("#")
        ]
        # counters sorted, then gauges, then histograms
        assert samples[0].startswith("repro_fleet_decisions_total")
        assert samples[1].startswith("repro_oran_bus_delivered_total")
        assert samples[2].startswith("repro_fleet_cells")
        assert samples[3].startswith("repro_core_gp_add_s_bucket")

    def test_labels_attached_and_escaped(self):
        text = prometheus_exposition(
            {"counters": {"x": 1}, "gauges": {}, "histograms": {}},
            labels={"run": 'we"ird\\label\nname'},
        )
        assert 'repro_x_total{run="we\\"ird\\\\label\\nname"} 1' in text

    def test_labels_merge_with_histogram_le(self):
        text = prometheus_exposition(snapshot(), labels={"cell": "c0"})
        assert 'repro_core_gp_add_s_bucket{cell="c0",le="0.001"} 3' in text
        assert 'repro_core_gp_add_s_sum{cell="c0"} 0.5' in text

    def test_name_sanitisation(self):
        text = prometheus_exposition(
            {"counters": {"a.b-c/d": 1}, "gauges": {}, "histograms": {}}
        )
        assert "repro_a_b_c_d_total 1" in text

    def test_custom_prefix_and_empty_snapshot(self):
        text = prometheus_exposition(
            {"counters": {"x": 1}, "gauges": {}, "histograms": {}},
            prefix="edgebol",
        )
        assert "edgebol_x_total 1" in text
        assert prometheus_exposition(
            {"counters": {}, "gauges": {}, "histograms": {}}
        ) == ""

    def test_output_ends_with_newline(self):
        assert prometheus_exposition(snapshot()).endswith("\n")


class TestJsonlSinkBuffering:
    def _record(self, i):
        return {"type": "span", "trace": 1, "id": i, "parent": None,
                "depth": 0, "name": "x", "start_s": 0.0, "duration_s": 0.1,
                "attrs": {}}

    def test_default_is_buffered(self, tmp_path):
        sink = JsonlSink(tmp_path / "t.jsonl")
        assert sink.flush_every > 1

    def test_close_flushes_partial_batch(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JsonlSink(path, flush_every=64)
        for i in range(5):
            sink.emit(self._record(i))
        sink.close()
        spans, _ = read_jsonl(path)
        assert len(spans) == 5

    def test_batch_boundary_flushes_to_disk(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JsonlSink(path, flush_every=4)
        for i in range(4):
            sink.emit(self._record(i))
        # batch full: the four lines are visible without closing
        with path.open() as handle:
            assert len(handle.readlines()) == 4
        sink.close()

    def test_flush_every_one_matches_legacy_per_line(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JsonlSink(path, flush_every=1)
        sink.emit(self._record(0))
        with path.open() as handle:
            assert len(handle.readlines()) == 1
        sink.close()

    def test_record_count_tracks_emits(self, tmp_path):
        sink = JsonlSink(tmp_path / "t.jsonl", flush_every=8)
        for i in range(20):
            sink.emit(self._record(i))
        assert sink.n_records == 20
        sink.close()

    def test_invalid_flush_every_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="flush_every"):
            JsonlSink(tmp_path / "t.jsonl", flush_every=0)

    def test_close_idempotent(self, tmp_path):
        sink = JsonlSink(tmp_path / "t.jsonl", flush_every=4)
        sink.emit(self._record(0))
        sink.close()
        sink.close()
        spans, _ = read_jsonl(sink.path)
        assert len(spans) == 1
