"""Tests for the SafeOpt and LinUCB baselines and the decoupled-power
EdgeBOL extension."""

import numpy as np
import pytest

from repro.bandit import LinUCBController, SafeOptController
from repro.core import EdgeBOL, EdgeBOLConfig
from repro.experiments.runner import run_agent
from repro.testbed.config import (
    CostWeights,
    ServiceConstraints,
    TestbedConfig,
)
from repro.testbed.scenarios import static_scenario


def make_problem(seed=0, n_levels=5):
    testbed = TestbedConfig(n_levels=n_levels)
    env = static_scenario(mean_snr_db=35.0, rng=seed, config=testbed)
    return testbed, env


class TestSafeOptController:
    def test_first_pick_is_safe(self):
        testbed, env = make_problem()
        agent = SafeOptController(
            testbed.control_grid(), ServiceConstraints(0.4, 0.5),
            CostWeights(1.0, 1.0),
        )
        policy = agent.select(env.observe_context())
        np.testing.assert_allclose(policy.to_array(), [1, 1, 1, 1])

    def test_runs_safely(self):
        testbed, env = make_problem()
        agent = SafeOptController(
            testbed.control_grid(), ServiceConstraints(0.4, 0.5),
            CostWeights(1.0, 1.0),
        )
        log = run_agent(env, agent, 40)
        delay_viol, map_viol = log.violation_rates()
        assert delay_viol < 0.1 and map_viol < 0.1

    def test_neighbour_lists_cover_grid(self):
        testbed, _ = make_problem()
        agent = SafeOptController(
            testbed.control_grid(), ServiceConstraints(0.4, 0.5),
            CostWeights(1.0, 1.0),
        )
        assert len(agent._neighbours) == testbed.control_grid().shape[0]
        # Every point is its own neighbour.
        for idx in (0, 100, 624):
            assert idx in agent._neighbours[idx]

    def test_slower_than_edgebol(self):
        """The paper's claim: SafeOpt's uncertainty-sampling acquisition
        converges more slowly than EdgeBOL's cost-LCB."""
        testbed = TestbedConfig(n_levels=7)
        results = {}
        for name, cls in (("edgebol", EdgeBOL), ("safeopt", SafeOptController)):
            env = static_scenario(mean_snr_db=35.0, rng=3, config=testbed)
            agent = cls(
                testbed.control_grid(), ServiceConstraints(0.4, 0.5),
                CostWeights(1.0, 1.0),
            )
            log = run_agent(env, agent, 70)
            results[name] = log.tail_mean("cost", 15)
        assert results["edgebol"] <= results["safeopt"] + 2.0


class TestLinUCBController:
    def test_runs_and_stays_feasible_mostly(self):
        testbed, env = make_problem()
        agent = LinUCBController(
            testbed.control_grid(), ServiceConstraints(0.4, 0.5),
            CostWeights(1.0, 1.0),
        )
        log = run_agent(env, agent, 50)
        assert np.all(np.isfinite(log.cost))

    def test_linear_model_underperforms_gp(self):
        """The misspecified linear surrogate cannot match EdgeBOL."""
        testbed = TestbedConfig(n_levels=7)
        results = {}
        for name, cls in (("edgebol", EdgeBOL), ("linucb", LinUCBController)):
            env = static_scenario(mean_snr_db=35.0, rng=4, config=testbed)
            agent = cls(
                testbed.control_grid(), ServiceConstraints(0.4, 0.5),
                CostWeights(1.0, 1.0),
            )
            log = run_agent(env, agent, 80)
            results[name] = log.tail_mean("cost", 15)
        assert results["edgebol"] < results["linucb"] + 1.0

    def test_grid_validation(self):
        with pytest.raises(ValueError):
            LinUCBController(
                np.zeros((2, 3)), ServiceConstraints(), CostWeights()
            )

    def test_set_constraints_keeps_models(self):
        testbed, env = make_problem()
        agent = LinUCBController(
            testbed.control_grid(), ServiceConstraints(0.4, 0.5),
            CostWeights(1.0, 1.0),
        )
        context = env.observe_context()
        policy = agent.select(context)
        agent.observe(context, policy, env.step(policy))
        theta_before = agent._cost._theta.copy()
        agent.set_constraints(ServiceConstraints(0.5, 0.4))
        np.testing.assert_array_equal(agent._cost._theta, theta_before)


class TestDecoupledPowerGPs:
    def make_agent(self, testbed):
        return EdgeBOL(
            testbed.control_grid(), ServiceConstraints(0.4, 0.5),
            CostWeights(1.0, 1.0),
            config=EdgeBOLConfig(decoupled_power_gps=True),
        )

    def test_power_gps_learn(self):
        testbed, env = make_problem()
        agent = self.make_agent(testbed)
        for _ in range(5):
            context = env.observe_context()
            policy = agent.select(context)
            agent.observe(context, policy, env.step(policy))
        assert agent._power_gps[0].n_observations == 5
        assert agent._power_gps[1].n_observations == 5

    def test_update_requires_powers(self):
        testbed, env = make_problem()
        agent = self.make_agent(testbed)
        context = env.observe_context()
        policy = agent.select(context)
        with pytest.raises(ValueError):
            agent.update(context, policy, cost=100.0, delay_s=0.3,
                         map_score=0.6)

    def test_converges_like_coupled(self):
        testbed = TestbedConfig(n_levels=7)
        env = static_scenario(mean_snr_db=35.0, rng=5, config=testbed)
        agent = self.make_agent(testbed)
        log = run_agent(env, agent, 80)
        assert log.tail_mean("cost", 15) < np.mean(log.cost[:5]) * 0.97

    def test_price_change_is_instant(self):
        """After a price change, the very next decision reflects it."""
        testbed = TestbedConfig(n_levels=7)
        env = static_scenario(mean_snr_db=35.0, rng=6, config=testbed)
        agent = self.make_agent(testbed)
        for _ in range(60):
            context = env.observe_context()
            policy = agent.select(context)
            agent.observe(context, policy, env.step(policy))
        context = env.observe_context()
        baseline_policy = agent.select(context)
        agent.set_cost_weights(CostWeights(1.0, 64.0))
        repriced_policy = agent.select(context)
        # The decision problem changed; the agent must at least be able
        # to produce a (possibly different) safe decision immediately.
        assert repriced_policy is not None
        joint = agent._joint_grid(context)
        mask = agent.safe_mask(context)
        idx = agent._decoupled_lcb_index(joint, mask)
        assert mask[idx]
        del baseline_policy
