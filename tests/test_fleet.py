"""Tests for the async O-RAN runtime and the multi-cell fleet harness.

The headline contract (``docs/CONTROL_PLANE.md``): a single-cell run
through the event-loop plane is **bit-identical** to the synchronous
run at the same seed — RunLog rows and decision-trace records — and
survives an installed fault plan.  On top: fleet determinism, per-cell
policy isolation, the load models, and alert rule/throttle behaviour.
"""

import json

import pytest

from repro.core import EdgeBOL
from repro.experiments.fleet import run_fleet_cell_sim, run_fleet_spec_cell
from repro.experiments.runner import run_agent
from repro.faults import FaultPlan, FaultSpec, use
from repro.obs import runtime as obs
from repro.oran import (
    AlertRouter,
    AlertRule,
    AsyncOranSystem,
    FleetLoadModel,
    FleetRuntime,
    OranSystem,
    default_rules,
)
from repro.testbed.config import CostWeights, ServiceConstraints, TestbedConfig
from repro.testbed.scenarios import static_scenario
from repro.utils.rng import seed_tree

TESTBED = TestbedConfig(n_levels=4)


def _make_cell(seed):
    """One (env, agent) pair from one seed node."""
    env_rng, = seed_tree(seed, 1)
    env = static_scenario(rng=env_rng, config=TESTBED)
    agent = EdgeBOL(
        TESTBED.control_grid(), ServiceConstraints(), CostWeights(1.0, 1.0)
    )
    return env, agent


# -- sync == async bit-identity ------------------------------------------


class TestBitIdentity:
    def test_runlog_rows_identical(self):
        """The acceptance gate: async RunLog rows == sync rows."""
        logs = {}
        for plane in ("sync", "async"):
            env, agent = _make_cell(7)
            logs[plane] = run_agent(env, agent, 12, plane=plane)
        assert json.dumps(logs["async"].as_rows()) \
            == json.dumps(logs["sync"].as_rows())

    def test_decision_traces_identical(self):
        traces = {}
        for plane in ("sync", "async"):
            env, agent = _make_cell(11)
            with obs.use(obs.ListSink()) as sink:
                run_agent(env, agent, 8, plane=plane)
            traces[plane] = sink.records
        assert traces["async"] == traces["sync"]

    def test_identity_survives_fault_plan(self):
        """Both planes draw the same bus-fault stream: still identical."""
        plan = FaultPlan(specs=(
            FaultSpec(kind="bus", mode="loss", target="e2.indication",
                      at=(2,)),
            FaultSpec(kind="bus", mode="delay", target="e2.control",
                      at=(4,), magnitude=2.0),
        ))
        logs = {}
        for plane in ("sync", "async"):
            with use(plan):
                env, agent = _make_cell(3)
                logs[plane] = run_agent(env, agent, 10, plane=plane)
        assert json.dumps(logs["async"].as_rows()) \
            == json.dumps(logs["sync"].as_rows())

    def test_orchestration_records_identical(self):
        env_s, agent_s = _make_cell(5)
        env_a, agent_a = _make_cell(5)
        sync_records = OranSystem(env_s, agent_s).run(10)
        async_records = AsyncOranSystem(env_a, agent_a).run(10)
        for s, a in zip(sync_records, async_records):
            assert s.policy == a.policy
            assert s.observation == a.observation
            assert s.cost == a.cost

    def test_plane_validation(self):
        env, agent = _make_cell(0)
        with pytest.raises(ValueError, match="plane"):
            run_agent(env, agent, 1, plane="quantum")


# -- fleet runtime -------------------------------------------------------


class TestFleetRuntime:
    def test_fleet_runs_and_accounts_decisions(self):
        cells = [_make_cell(100 + i) for i in range(3)]
        fleet = FleetRuntime(cells)
        result = fleet.run(6)
        assert result.n_cells == 3 and result.n_periods == 6
        assert result.decisions == 18
        assert sorted(result.logs) == ["cell000", "cell001", "cell002"]
        assert all(len(log) == 6 for log in result.logs.values())
        assert result.decisions_per_s > 0
        # Per-cell topic namespaces all saw traffic.
        stats = result.mailbox_stats
        for cell_id in result.logs:
            assert f"{cell_id}.e2.indication" in stats

    def test_fleet_is_deterministic(self):
        def run():
            cells = [_make_cell(200 + i) for i in range(2)]
            load = FleetLoadModel(2, profile="correlated", seed=5)
            result = FleetRuntime(cells, load_model=load).run(5)
            return json.dumps({
                cell: log.as_rows() for cell, log in result.logs.items()
            })

        assert run() == run()

    def test_cells_enforce_their_own_policies(self):
        """The shared A1 service must not leak one cell's policy into
        another (per-cell ``policy_id`` filtering on the xApps)."""
        cells = [_make_cell(300 + i) for i in range(2)]
        fleet = FleetRuntime(cells)
        fleet.run(3)
        for cell in fleet.cells:
            # Each cell's E2 node enforced the decision its own agent
            # deployed (quantised through the shared A1 radio policy).
            last_control = fleet.bus.history(f"{cell.prefix}e2.control")[-1]
            assert last_control.airtime \
                == pytest.approx(cell.e2_node.radio_policy.airtime)

    def test_single_cell_fleet_matches_async_system(self):
        """A 1-cell fleet (no load model) and AsyncOranSystem agree on
        the policies and KPIs the agent saw (the fleet's own loop is
        the same plane, prefixed)."""
        env_f, agent_f = _make_cell(17)
        env_a, agent_a = _make_cell(17)
        fleet = FleetRuntime([(env_f, agent_f)])
        fleet_result = fleet.run(6)
        system = AsyncOranSystem(env_a, agent_a)
        records = system.run(6)
        rows = fleet_result.logs["cell000"].as_rows()
        assert len(rows) == len(records)
        for row, record in zip(rows, records):
            assert row["cost"] == record.cost
            assert row["delay_s"] == record.observation.delay_s

    def test_load_model_mismatch_rejected(self):
        cells = [_make_cell(0)]
        with pytest.raises(ValueError, match="load model covers"):
            FleetRuntime(cells, load_model=FleetLoadModel(3))

    def test_empty_fleet_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            FleetRuntime([])


# -- load models ---------------------------------------------------------


class TestFleetLoadModel:
    @pytest.mark.parametrize("profile", ["flat", "diurnal", "flash",
                                         "correlated"])
    def test_profiles_positive_and_deterministic(self, profile):
        def trajectory():
            model = FleetLoadModel(4, profile=profile, seed=9)
            return [model.step().tolist() for _ in range(20)]

        a, b = trajectory(), trajectory()
        assert a == b
        assert all(v > 0 for row in a for v in row)

    def test_flat_is_constant(self):
        model = FleetLoadModel(3, profile="flat", base=2.0)
        assert model.step().tolist() == [2.0, 2.0, 2.0]

    def test_diurnal_phases_stagger_across_cells(self):
        model = FleetLoadModel(4, profile="diurnal", seed=0,
                               periods_per_day=16)
        first = model.step()
        # Phase-staggered starts: the cells do not begin at one point
        # of the day curve.
        assert len({round(v, 6) for v in first}) > 1

    def test_flash_surges_decay_and_spill(self):
        model = FleetLoadModel(5, profile="flash", seed=3, flash_rate=1.0,
                               flash_duration=2)
        values = model.step()
        assert model.active_flashes >= 1
        assert values.max() > model.base  # somebody is surging
        # With rate 0 afterwards the surge decays away.
        model.flash_rate = 0.0
        for _ in range(4):
            values = model.step()
        assert model.active_flashes == 0
        assert values.tolist() == [model.base] * 5

    def test_validation(self):
        with pytest.raises(ValueError, match="profile"):
            FleetLoadModel(2, profile="tsunami")
        with pytest.raises(ValueError, match="n_cells"):
            FleetLoadModel(0)


# -- alerts --------------------------------------------------------------


class TestAlerts:
    @staticmethod
    def _sample(cell="cell000", t=0, **kw):
        base = {"cell": cell, "t": t, "delay_s": 0.1, "map_score": 0.9,
                "d_max_s": 0.5, "rho_min": 0.4, "degraded": False}
        base.update(kw)
        return base

    def test_delay_violation_fires_and_throttles(self):
        router = AlertRouter(default_rules(min_gap=5))
        raised = []
        router.add_sink(raised.append)
        for t in range(8):
            router.process(self._sample(t=t, delay_s=0.9))
        # Raised at t=0, throttled until t=5, raised again.
        delays = [a.t for a in raised if a.rule == "delay_violation"]
        assert delays == [0, 5]
        by_rule = router.counts_by_rule()["delay_violation"]
        assert by_rule == {"raised": 2, "suppressed": 6}

    def test_sustain_requires_consecutive_periods(self):
        rule = AlertRule(
            name="streak", predicate=lambda s: s["delay_s"] > 0.5,
            message=lambda s: "streak", sustain=3, min_gap=100,
        )
        router = AlertRouter((rule,))
        fired = []
        router.add_sink(fired.append)
        pattern = [0.9, 0.9, 0.1, 0.9, 0.9, 0.9]   # broken then full streak
        for t, delay in enumerate(pattern):
            router.process(self._sample(t=t, delay_s=delay))
        assert [a.t for a in fired] == [5]

    def test_per_cell_throttle_state_is_independent(self):
        router = AlertRouter(default_rules(min_gap=10))
        for cell in ("cell000", "cell001"):
            router.process(self._sample(cell=cell, t=0, delay_s=0.9))
        by_rule = router.counts_by_rule()
        assert by_rule["delay_violation"]["raised"] == 2
        assert by_rule["delay_violation"]["suppressed"] == 0

    def test_degraded_stretch_and_negative_margin(self):
        router = AlertRouter(default_rules(degraded_sustain=3,
                                           margin_sustain=2))
        fired = []
        router.add_sink(fired.append)
        for t in range(4):
            router.process(self._sample(t=t, delay_s=0.9, degraded=True))
        names = [a.rule for a in fired]
        assert "negative_margin" in names       # margin < 0 for 2 periods
        assert "degraded_stretch" in names      # degraded for 3 periods
        critical = [a for a in fired if a.severity == "critical"]
        assert len(critical) == len(fired) - names.count("delay_violation")

    def test_alerts_route_to_bus_topic(self):
        from repro.oran import AsyncMessageBus

        bus = AsyncMessageBus()
        seen = []
        bus.subscribe("smo.alerts", seen.append)
        router = AlertRouter(default_rules(), bus=bus)
        router.process(self._sample(delay_s=0.9))
        bus.drain()
        assert len(seen) == 1
        assert seen[0]["type"] == "alert"
        assert seen[0]["rule"] == "delay_violation"

    def test_duplicate_rule_names_rejected(self):
        rule = default_rules()[0]
        with pytest.raises(ValueError, match="duplicate"):
            AlertRouter((rule, rule))


# -- the fleet experiment spec -------------------------------------------


class TestFleetSpec:
    PARAMS = {"cells": 2, "periods": 4, "levels": 3, "users": 1,
              "load": "diurnal", "policy": "block", "batch": 1}

    def test_cell_rows_deterministic_and_complete(self):
        rows_a = run_fleet_spec_cell(self.PARAMS, 0)
        rows_b = run_fleet_spec_cell(self.PARAMS, 0)
        assert json.dumps(rows_a) == json.dumps(rows_b)
        assert [r["cell"] for r in rows_a] == ["cell000", "cell001"]
        for row in rows_a:
            assert row["decisions"] == 4
            # No wall-clock in rows: the schema must stay reproducible.
            assert "wall_s" not in row and "decisions_per_s" not in row

    def test_alerts_counted_under_pressure(self):
        """A tight capacity + flash load exercises drops and alerts
        without breaking the run."""
        result = run_fleet_cell_sim(
            n_cells=2, n_periods=6, seed=1, levels=3,
            load_profile="flash", mailbox_policy="drop-oldest",
        )
        counts = result.alert_counts
        assert counts["raised"] >= 0 and counts["suppressed"] >= 0
        assert result.decisions == 12
