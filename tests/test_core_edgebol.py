"""Tests for the EdgeBOL agent (Algorithm 1)."""

import numpy as np
import pytest

from repro.core import EdgeBOL, EdgeBOLConfig
from repro.experiments.runner import run_agent
from repro.testbed.config import (
    CostWeights,
    ServiceConstraints,
    TestbedConfig,
)
from repro.testbed.context import Context
from repro.testbed.scenarios import static_scenario


def make_agent(config=None, n_levels=5, constraints=None, weights=None):
    testbed = TestbedConfig(n_levels=n_levels)
    return EdgeBOL(
        testbed.control_grid(),
        constraints or ServiceConstraints(0.4, 0.5),
        weights or CostWeights(1.0, 1.0),
        config=config,
    )


def fixed_context():
    return Context.from_snrs([35.0])


class TestConstruction:
    def test_s0_is_max_resources(self):
        agent = make_agent()
        np.testing.assert_allclose(
            agent.control_grid[agent.s0_index], [1, 1, 1, 1]
        )

    def test_three_gps(self):
        agent = make_agent()
        assert len(agent.gps) == 3

    def test_bad_grid_rejected(self):
        with pytest.raises(ValueError):
            EdgeBOL(
                np.zeros((3, 5)),
                ServiceConstraints(),
                CostWeights(),
            )

    def test_custom_lengthscales_validated(self):
        config = EdgeBOLConfig(lengthscales=np.ones(3))
        with pytest.raises(ValueError):
            make_agent(config=config)


class TestSelectAndUpdate:
    def test_first_selection_is_s0(self):
        """With no data the only safe control is S0 (max resources)."""
        agent = make_agent()
        policy = agent.select(fixed_context())
        np.testing.assert_allclose(policy.to_array(), [1, 1, 1, 1])
        assert agent.last_safe_set_size == 1

    def test_update_grows_observations(self):
        agent = make_agent()
        context = fixed_context()
        policy = agent.select(context)
        agent.update(context, policy, cost=100.0, delay_s=0.3, map_score=0.6)
        assert agent.n_observations == 1

    def test_delay_clipping(self):
        agent = make_agent(config=EdgeBOLConfig(delay_clip_s=1.5))
        context = fixed_context()
        policy = agent.select(context)
        agent.update(context, policy, cost=100.0, delay_s=float("inf"),
                     map_score=0.6)
        assert agent.gps[1].targets[0] == 1.5

    def test_observe_computes_cost(self, static_env):
        agent = make_agent(weights=CostWeights(2.0, 3.0))
        context = static_env.observe_context()
        policy = agent.select(context)
        observation = static_env.step(policy)
        cost = agent.observe(context, policy, observation)
        expected = 2.0 * observation.server_power_w + 3.0 * observation.bs_power_w
        assert cost == pytest.approx(expected)

    def test_safe_set_grows_with_experience(self, static_env):
        agent = make_agent()
        sizes = []
        for _ in range(25):
            context = static_env.observe_context()
            policy = agent.select(context)
            sizes.append(agent.last_safe_set_size)
            observation = static_env.step(policy)
            agent.observe(context, policy, observation)
        assert sizes[-1] > sizes[0]

    def test_safe_mask_includes_s0_always(self):
        agent = make_agent(constraints=ServiceConstraints(0.001, 0.99))
        mask = agent.safe_mask(fixed_context())
        assert mask[agent.s0_index]
        # Infeasible thresholds: nothing else can be certified.
        assert mask.sum() == 1


class TestRuntimeReconfiguration:
    def test_set_constraints_keeps_data(self, static_env):
        agent = make_agent()
        for _ in range(10):
            context = static_env.observe_context()
            policy = agent.select(context)
            agent.observe(context, policy, static_env.step(policy))
        n = agent.n_observations
        agent.set_constraints(ServiceConstraints(0.5, 0.4))
        assert agent.n_observations == n
        assert agent.constraints.d_max_s == 0.5

    def test_relaxed_constraints_enlarge_safe_set(self, static_env):
        agent = make_agent()
        for _ in range(20):
            context = static_env.observe_context()
            policy = agent.select(context)
            agent.observe(context, policy, static_env.step(policy))
        context = static_env.observe_context()
        tight = agent.safe_set_size(context)
        agent.set_constraints(ServiceConstraints(0.6, 0.3))
        relaxed = agent.safe_set_size(context)
        assert relaxed >= tight

    def test_set_cost_weights(self):
        agent = make_agent()
        agent.set_cost_weights(CostWeights(1.0, 64.0))
        assert agent.cost_weights.delta2 == 64.0


class TestLearning:
    def test_cost_decreases(self, testbed_config):
        """The headline behaviour: converged cost beats the S0 cost."""
        testbed = TestbedConfig(n_levels=7)
        env = static_scenario(mean_snr_db=35.0, rng=0, config=testbed)
        agent = EdgeBOL(
            testbed.control_grid(),
            ServiceConstraints(0.4, 0.5),
            CostWeights(1.0, 1.0),
        )
        log = run_agent(env, agent, 100)
        early = np.mean(log.cost[:5])
        late = np.mean(log.cost[-20:])
        assert late < early * 0.94

    def test_constraints_respected_after_convergence(self):
        testbed = TestbedConfig(n_levels=7)
        env = static_scenario(mean_snr_db=35.0, rng=1, config=testbed)
        agent = EdgeBOL(
            testbed.control_grid(),
            ServiceConstraints(0.4, 0.5),
            CostWeights(1.0, 1.0),
        )
        log = run_agent(env, agent, 80)
        delay_viol, map_viol = log.violation_rates(burn_in=30)
        assert delay_viol < 0.1
        assert map_viol < 0.1

    def test_max_observations_bounds_memory(self):
        testbed = TestbedConfig(n_levels=5)
        env = static_scenario(mean_snr_db=35.0, rng=2, config=testbed)
        agent = EdgeBOL(
            testbed.control_grid(),
            ServiceConstraints(0.4, 0.5),
            CostWeights(1.0, 1.0),
            config=EdgeBOLConfig(max_observations=20, ),
        )
        run_agent(env, agent, 60)
        assert agent.n_observations <= 20 + 100  # budget + eviction block


class TestHyperparameterFitting:
    def test_fit_from_profiling_data(self):
        agent = make_agent()
        rng = np.random.default_rng(0)
        n = 30
        inputs = np.hstack([
            np.tile(fixed_context().to_array(), (n, 1)),
            rng.uniform(0, 1, size=(n, 4)),
        ])
        costs = 100 + 50 * inputs[:, 5] + rng.normal(0, 2, n)
        delays = 0.3 + 0.2 * (1 - inputs[:, 4]) + rng.normal(0, 0.01, n)
        maps = 0.3 + 0.3 * inputs[:, 3] + rng.normal(0, 0.01, n)
        agent.fit_hyperparameters(inputs, costs, delays, maps,
                                  n_restarts=1, rng=0)
        for gp in agent.gps:
            assert gp.noise_variance > 0
            assert np.all(np.isfinite(gp.kernel.lengthscales))
