"""Tests for the benchmark policies: DDPG, oracle, simple baselines."""

import numpy as np
import pytest

from repro.bandit import (
    DDPGConfig,
    DDPGController,
    EpsilonGreedyBandit,
    ExhaustiveOracle,
    PenalizedGPBandit,
)
from repro.experiments.runner import run_agent
from repro.testbed.config import (
    ControlPolicy,
    CostWeights,
    ServiceConstraints,
    TestbedConfig,
    default_control_grid,
)
from repro.testbed.env import TestbedObservation
from repro.testbed.scenarios import static_scenario


def make_observation(delay=0.3, map_score=0.6, server=100.0, bs=5.0):
    return TestbedObservation(
        delay_s=delay,
        map_score=map_score,
        server_power_w=server,
        bs_power_w=bs,
        gpu_delay_s=0.1,
        gpu_utilization=0.3,
        total_rate_hz=3.0,
        mean_mcs=20.0,
        offered_load_bps=1e6,
        per_user_delay_s=(delay,),
        per_user_rate_hz=(3.0,),
    )


class TestDDPGController:
    def make(self, **kwargs):
        return DDPGController(
            ServiceConstraints(0.4, 0.5),
            CostWeights(1.0, 1.0),
            config=DDPGConfig(warmup_steps=2, batch_size=8, updates_per_step=1),
            rng=0,
            **kwargs,
        )

    def test_select_returns_valid_policy(self, static_env):
        agent = self.make()
        context = static_env.observe_context()
        policy = agent.select(context)
        assert 0.25 <= policy.resolution <= 1.0
        assert 0.1 <= policy.airtime <= 1.0

    def test_ddpg_cost_feasible(self):
        agent = self.make()
        cost = agent.ddpg_cost(make_observation(delay=0.3, map_score=0.6))
        assert cost == pytest.approx(105.0 / 300.0)

    def test_ddpg_cost_infeasible_is_max(self):
        agent = self.make()
        assert agent.ddpg_cost(make_observation(delay=0.9)) == 1.0
        assert agent.ddpg_cost(make_observation(map_score=0.1)) == 1.0

    def test_observe_returns_raw_cost(self, static_env):
        agent = self.make()
        context = static_env.observe_context()
        policy = agent.select(context)
        cost = agent.observe(context, policy, make_observation())
        assert cost == pytest.approx(105.0)

    def test_noise_decays(self, static_env):
        agent = self.make()
        initial = agent._noise_std
        context = static_env.observe_context()
        for _ in range(50):
            policy = agent.select(context)
            agent.observe(context, policy, make_observation())
        assert agent._noise_std < initial

    def test_set_constraints_clears_buffer(self, static_env):
        agent = self.make()
        context = static_env.observe_context()
        for _ in range(5):
            agent.observe(context, agent.select(context), make_observation())
        agent.set_constraints(ServiceConstraints(0.5, 0.4))
        assert len(agent._buffer) == 0

    def test_learning_reduces_cost(self):
        """DDPG eventually improves on random actions (slowly)."""
        testbed = TestbedConfig()
        env = static_scenario(mean_snr_db=35.0, rng=0, config=testbed)
        agent = DDPGController(
            ServiceConstraints(0.5, 0.4),
            CostWeights(1.0, 1.0),
            config=DDPGConfig(warmup_steps=20, updates_per_step=4),
            rng=1,
        )
        log = run_agent(env, agent, 250)
        early = np.nanmean(log.cost[:30])
        late = np.nanmean(log.cost[-50:])
        assert late < early * 1.05  # at minimum it must not diverge


class TestExhaustiveOracle:
    def make_oracle(self, constraints=None, grid_levels=5):
        testbed = TestbedConfig()
        env = static_scenario(mean_snr_db=35.0, rng=0, config=testbed)
        oracle = ExhaustiveOracle(
            env, CostWeights(1.0, 1.0),
            control_grid=default_control_grid(grid_levels),
        )
        return oracle

    def test_result_is_feasible(self):
        oracle = self.make_oracle()
        result = oracle.best(ServiceConstraints(0.4, 0.5), snrs_db=[35.0])
        assert result.feasible
        assert result.delay_s <= 0.4
        assert result.map_score >= 0.5

    def test_result_is_grid_minimum(self):
        oracle = self.make_oracle()
        constraints = ServiceConstraints(0.4, 0.5)
        result = oracle.best(constraints, snrs_db=[35.0])
        for row in oracle.control_grid:
            obs = oracle.env.evaluate(
                ControlPolicy.from_array(row), snrs_db=[35.0], noisy=False
            )
            if constraints.satisfied(obs.delay_s, obs.map_score):
                cost = oracle.cost_weights.cost(
                    obs.server_power_w, obs.bs_power_w
                )
                assert result.cost <= cost + 1e-9

    def test_infeasible_flag(self):
        oracle = self.make_oracle()
        result = oracle.best(
            ServiceConstraints(0.001, 0.99), snrs_db=[35.0]
        )
        assert not result.feasible

    def test_cache_hit(self):
        oracle = self.make_oracle()
        constraints = ServiceConstraints(0.4, 0.5)
        a = oracle.best(constraints, snrs_db=[35.0])
        b = oracle.best(constraints, snrs_db=[35.0])
        assert a is b

    def test_tighter_constraints_cost_more(self):
        oracle = self.make_oracle(grid_levels=6)
        lax = oracle.best(ServiceConstraints(0.5, 0.4), snrs_db=[35.0])
        medium = oracle.best(ServiceConstraints(0.4, 0.5), snrs_db=[35.0])
        assert medium.cost >= lax.cost - 1e-9


class TestEpsilonGreedy:
    def make(self):
        return EpsilonGreedyBandit(
            default_control_grid(3),
            ServiceConstraints(0.4, 0.5),
            CostWeights(1.0, 1.0),
            epsilon=0.5,
            rng=0,
        )

    def test_select_before_observe(self, static_env):
        agent = self.make()
        policy = agent.select(static_env.observe_context())
        assert isinstance(policy, ControlPolicy)

    def test_observe_without_select_raises(self, static_env):
        agent = self.make()
        with pytest.raises(RuntimeError):
            agent.observe(
                static_env.observe_context(),
                ControlPolicy.max_resources(),
                make_observation(),
            )

    def test_penalty_applied(self, static_env):
        agent = self.make()
        context = static_env.observe_context()
        agent.select(context)
        agent.observe(context, ControlPolicy.max_resources(),
                      make_observation(delay=5.0))
        assert agent._means[agent._last_index] > 500.0

    def test_epsilon_decays(self, static_env):
        agent = self.make()
        context = static_env.observe_context()
        for _ in range(30):
            agent.select(context)
            agent.observe(context, ControlPolicy.max_resources(),
                          make_observation())
        assert agent.epsilon < 0.5

    def test_set_constraints_resets(self, static_env):
        agent = self.make()
        context = static_env.observe_context()
        agent.select(context)
        agent.observe(context, ControlPolicy.max_resources(), make_observation())
        agent.set_constraints(ServiceConstraints(0.5, 0.4))
        assert agent._counts.sum() == 0


class TestPenalizedGPBandit:
    def test_violates_during_learning_then_settles(self):
        """Without a safe set, learning *requires* infeasible probes —
        the behaviour the EdgeBOL safe set exists to avoid."""
        testbed = TestbedConfig(n_levels=5)
        env = static_scenario(mean_snr_db=35.0, rng=0, config=testbed)
        agent = PenalizedGPBandit(
            testbed.control_grid(),
            ServiceConstraints(0.4, 0.5),
            CostWeights(1.0, 1.0),
        )
        log = run_agent(env, agent, 60)
        delay_viol, _ = log.violation_rates()
        assert delay_viol > 0.0
        # It still converges to a sane feasible-ish operating cost.
        assert 80.0 < np.mean(log.cost[-15:]) < 160.0

    def test_grid_validation(self):
        with pytest.raises(ValueError):
            PenalizedGPBandit(
                np.zeros((3, 2)),
                ServiceConstraints(),
                CostWeights(),
            )
