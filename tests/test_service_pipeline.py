"""Tests for the end-to-end closed-loop service model."""

import numpy as np
import pytest

from repro.ran.mac import RadioPolicy
from repro.service.pipeline import ServiceModel, UserEquipment


def calibrated_model(**kwargs) -> ServiceModel:
    from repro.testbed.config import TestbedConfig
    model = ServiceModel.from_config(TestbedConfig())
    for key, value in kwargs.items():
        setattr(model, key, value)
    return model


def steady(model=None, resolution=1.0, airtime=1.0, max_mcs=28, gpu=1.0,
           snrs=(35.0,)):
    model = model if model is not None else calibrated_model()
    users = [UserEquipment(snr_db=s) for s in snrs]
    return model.steady_state(
        resolution=resolution,
        radio_policy=RadioPolicy(airtime=airtime, max_mcs=max_mcs),
        gpu_speed=gpu,
        users=users,
    )


class TestUserEquipment:
    def test_think_time_grows_with_resolution(self):
        ue = UserEquipment(snr_db=30.0)
        assert ue.think_time_s(1.0) > ue.think_time_s(0.25)

    def test_think_time_positive(self):
        assert UserEquipment(snr_db=30.0).think_time_s(0.0) > 0


class TestSingleUserSteadyState:
    def test_delay_composition(self):
        """Single user: cycle = tx + gpu + think exactly (no queueing)."""
        state = steady()
        ue = UserEquipment(snr_db=35.0)
        expected = (
            state.per_user_tx_time_s[0]
            + state.per_user_gpu_delay_s[0]
            + ue.think_time_s(1.0)
        )
        assert state.per_user_delay_s[0] == pytest.approx(expected)

    def test_rate_is_inverse_cycle(self):
        state = steady()
        assert state.per_user_rate_hz[0] == pytest.approx(
            1.0 / state.per_user_delay_s[0]
        )

    def test_higher_resolution_raises_delay(self):
        assert steady(resolution=1.0).max_delay_s > steady(resolution=0.25).max_delay_s

    def test_lower_airtime_raises_delay(self):
        assert steady(airtime=0.2).max_delay_s > steady(airtime=1.0).max_delay_s

    def test_lower_gpu_speed_raises_delay(self):
        assert steady(gpu=0.0).max_delay_s > steady(gpu=1.0).max_delay_s

    def test_closed_loop_coupling_airtime_power(self):
        """Fig. 2: more airtime -> higher frame rate -> more server power."""
        fast = steady(airtime=1.0)
        slow = steady(airtime=0.2)
        assert fast.total_rate_hz > slow.total_rate_hz
        assert fast.server.server_power_w > slow.server.server_power_w

    def test_closed_loop_coupling_resolution_power(self):
        """Fig. 4: lower resolution -> more requests -> more server power."""
        low = steady(resolution=0.25)
        high = steady(resolution=1.0)
        assert low.server.server_power_w > high.server.server_power_w

    def test_offered_load_consistency(self):
        state = steady()
        from repro.service.images import encoded_bits
        assert state.offered_load_bps == pytest.approx(
            state.total_rate_hz * encoded_bits(1.0)
        )

    def test_load_multiplier_scales_offered(self):
        base = steady()
        multiplied = steady(calibrated_model(load_multiplier=10.0))
        assert multiplied.offered_load_bps == pytest.approx(
            10.0 * base.offered_load_bps
        )

    def test_delay_in_measured_range(self):
        """Best-case delays land in the paper's 0.2-0.5 s ballpark."""
        assert 0.15 < steady(resolution=0.25).max_delay_s < 0.3
        assert 0.25 < steady(resolution=1.0).max_delay_s < 0.45


class TestDeadLink:
    def test_zero_airtime_unserved(self):
        state = steady(airtime=0.0)
        assert state.max_delay_s == float("inf")
        assert state.total_rate_hz == 0.0
        assert state.offered_load_bps == 0.0

    def test_unserved_power_is_idle(self):
        state = steady(airtime=0.0)
        server_idle = calibrated_model().server
        assert state.server.gpu_utilization == 0.0
        assert state.server.server_power_w == pytest.approx(
            server_idle.host_idle_power_w + server_idle.gpu.idle_power_w
        )


class TestMultiUser:
    def test_users_share_radio(self):
        one = steady(snrs=(35.0,))
        two = steady(snrs=(35.0, 35.0))
        # Each of two users gets half the airtime; the MAC pipelining
        # gain partially offsets the split, so per-user tx time grows
        # but by less than 2x.
        assert two.per_user_tx_time_s[0] > one.per_user_tx_time_s[0]
        assert two.per_user_tx_time_s[0] < 2 * one.per_user_tx_time_s[0]

    def test_symmetric_users_equal_delays(self):
        state = steady(snrs=(30.0, 30.0, 30.0))
        assert np.allclose(state.per_user_delay_s, state.per_user_delay_s[0])

    def test_weak_user_dominates_max_delay(self):
        state = steady(snrs=(35.0, 5.0))
        assert state.max_delay_s == pytest.approx(state.per_user_delay_s[1])
        assert state.per_user_delay_s[1] > state.per_user_delay_s[0]

    def test_gpu_queueing_appears_with_users(self):
        model = calibrated_model()
        one = steady(model, snrs=(35.0,))
        many = steady(model, snrs=(35.0,) * 4)
        assert many.per_user_gpu_delay_s[0] > one.per_user_gpu_delay_s[0]

    def test_schweitzer_path_for_large_populations(self):
        model = calibrated_model(exact_mva_max_users=2)
        state = steady(model, snrs=(30.0,) * 5)
        assert np.all(np.isfinite(state.per_user_delay_s))
        assert state.total_rate_hz > 0

    def test_exact_and_schweitzer_agree(self):
        exact_model = calibrated_model(exact_mva_max_users=8)
        approx_model = calibrated_model(exact_mva_max_users=1)
        snrs = (35.0, 20.0, 10.0)
        exact = steady(exact_model, snrs=snrs)
        approx = steady(approx_model, snrs=snrs)
        np.testing.assert_allclose(
            exact.per_user_delay_s, approx.per_user_delay_s, rtol=0.15
        )

    def test_no_users_rejected(self):
        with pytest.raises(ValueError):
            steady(snrs=())
