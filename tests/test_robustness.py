"""Graceful-degradation tests: the ladders the fault plans exercise.

GP level: jitter escalation, rank-1 fallback and factor loss/recovery.
Agent level: observation quarantine and the S0 degraded mode.  Sensor
level: the power-meter clamp.  See ``docs/ROBUSTNESS.md`` for the
degradation-ladder contract these tests pin down.
"""

import numpy as np
import pytest

from repro.core import EdgeBOL, EdgeBOLConfig, NumericalInstabilityError
from repro.core.gp import GaussianProcess
from repro.core.kernels import RBF
from repro.core.numerics import MAX_JITTER_RETRIES, robust_cholesky
from repro.faults import FaultPlan, FaultSpec, uninstall, use
from repro.testbed.config import (
    ControlPolicy,
    CostWeights,
    ServiceConstraints,
    TestbedConfig,
)
from repro.testbed.env import TestbedObservation
from repro.testbed.powermeter import PowerMeter
from repro.testbed.scenarios import static_scenario


@pytest.fixture(autouse=True)
def _fault_free():
    """Every test starts and ends with no plan installed."""
    uninstall()
    yield
    uninstall()


def _make_gp(fault_hook=None):
    return GaussianProcess(
        kernel=RBF(lengthscales=np.ones(2), output_scale=1.0),
        noise_variance=1e-2,
        fault_hook=fault_hook,
    )


def _observation(delay=0.2, map_score=0.6, server=100.0, bs=5.0):
    return TestbedObservation(
        delay_s=delay,
        map_score=map_score,
        server_power_w=server,
        bs_power_w=bs,
        gpu_delay_s=0.05,
        gpu_utilization=0.5,
        total_rate_hz=10.0,
        mean_mcs=20.0,
        offered_load_bps=1e6,
        per_user_delay_s=(delay,),
        per_user_rate_hz=(10.0,),
    )


def _make_agent(**config_overrides):
    testbed = TestbedConfig(n_levels=3)
    return EdgeBOL(
        testbed.control_grid(),
        ServiceConstraints(d_max_s=0.4, rho_min=0.5),
        CostWeights(delta1=1.0, delta2=1.0),
        config=EdgeBOLConfig(**config_overrides),
    )


# -- robust_cholesky -----------------------------------------------------


def test_robust_cholesky_recovers_near_singular_gram():
    x = np.array([[0.0], [1e-9], [1.0]])
    gram = np.exp(-0.5 * (x - x.T) ** 2)  # two near-duplicate rows
    chol, jitter, attempt = robust_cholesky(gram)
    assert np.all(np.isfinite(chol))
    reconstructed = chol @ chol.T
    assert np.allclose(reconstructed, gram, atol=max(jitter * 10, 1e-8))


def test_robust_cholesky_exhausts_ladder_into_typed_error():
    calls = []

    def always_fail(site, attempt):
        calls.append((site, attempt))
        raise np.linalg.LinAlgError("injected")

    with pytest.raises(NumericalInstabilityError, match="jittered retries"):
        robust_cholesky(np.eye(3), fault_hook=always_fail)
    assert len(calls) == MAX_JITTER_RETRIES + 1  # bare + escalations


# -- GP degradation ladder ----------------------------------------------


def test_gp_transient_fault_recovers_via_refactorize():
    """A failed rank-1 update falls back to a full (jittered) rebuild."""
    fail_rank1_once = {"armed": True}

    def hook(site, attempt):
        if site == "rank1" and fail_rank1_once["armed"]:
            fail_rank1_once["armed"] = False
            raise np.linalg.LinAlgError("injected")

    gp = _make_gp(fault_hook=hook)
    rng = np.random.default_rng(0)
    x = rng.uniform(size=(6, 2))
    gp.fit(x[:5], np.sin(x[:5].sum(axis=1)))
    version = gp.factor_version
    gp.add(x[5], float(np.sin(x[5].sum())))

    assert gp.rank1_fallbacks == 1
    assert gp.factor_available
    assert gp.factor_version > version
    mean, std = gp.predict_std(x)
    assert np.all(np.isfinite(mean)) and np.all(np.isfinite(std))


def test_gp_jitter_escalation_recovers_and_advances_version():
    """Failing the first ladder attempts still yields a finite posterior."""
    def hook(site, attempt):
        if site == "refactorize" and attempt < 2:
            raise np.linalg.LinAlgError("injected")

    gp = _make_gp(fault_hook=hook)
    rng = np.random.default_rng(1)
    x = rng.uniform(size=(8, 2))
    gp.fit(x, np.cos(x.sum(axis=1)))

    assert gp.jitter_retries == 2
    assert gp.last_jitter > 0.0
    assert gp.factor_available
    mean, std = gp.predict_std(x)
    assert np.all(np.isfinite(mean)) and np.all(np.isfinite(std))


def test_gp_persistent_fault_loses_factor_but_keeps_data():
    def hook(site, attempt):
        raise np.linalg.LinAlgError("injected")

    gp = _make_gp(fault_hook=hook)
    rng = np.random.default_rng(2)
    x = rng.uniform(size=(5, 2))
    y = np.sin(x.sum(axis=1))
    with pytest.raises(NumericalInstabilityError):
        gp.fit(x, y)
    assert not gp.factor_available
    assert gp.n_observations == 5  # data survives for the recovery refit
    with pytest.raises(NumericalInstabilityError, match="posterior unavailable"):
        gp.predict(x)

    gp._fault_hook = None  # the fault clears; refit from retained data
    gp.fit(gp.inputs, gp.targets)
    assert gp.factor_available
    mean, _ = gp.predict_std(x)
    assert np.allclose(mean, y, atol=0.3)


# -- EdgeBOL quarantine gate ---------------------------------------------


@pytest.mark.parametrize("observation, reason", [
    (_observation(server=float("nan")), "non-finite"),
    (_observation(delay=float("nan")), "NaN delay"),
    (_observation(map_score=float("nan")), "non-finite mAP"),
    (_observation(bs=0.0), "implausible"),
    (_observation(server=-5.0), "implausible"),
])
def test_quarantine_rejects_corrupt_observations(observation, reason):
    agent = _make_agent()
    context = static_scenario(
        mean_snr_db=35.0, rng=0, config=TestbedConfig(n_levels=3)
    ).observe_context()
    policy = ControlPolicy.max_resources()
    agent.observe(context, policy, observation)
    assert agent.quarantined_observations == 1
    assert agent.n_observations == 0  # nothing reached the surrogates


def test_quarantine_keeps_clipped_infinite_delay():
    """Infinite delay is a real 'unserved period' signal, not corruption."""
    agent = _make_agent()
    env = static_scenario(mean_snr_db=35.0, rng=0,
                          config=TestbedConfig(n_levels=3))
    context = env.observe_context()
    policy = ControlPolicy.max_resources()
    agent.observe(context, policy, _observation(delay=float("inf")))
    assert agent.quarantined_observations == 0
    assert agent.n_observations == 1


def test_quarantine_spike_gate_needs_history():
    agent = _make_agent(quarantine_spike_factor=6.0, quarantine_min_history=5)
    env = static_scenario(mean_snr_db=35.0, rng=0,
                          config=TestbedConfig(n_levels=3))
    context = env.observe_context()
    policy = ControlPolicy.max_resources()
    # An early outlier passes (exploration legitimately spans a wide range).
    agent.observe(context, policy, _observation(server=1000.0))
    assert agent.quarantined_observations == 0
    for _ in range(5):
        agent.observe(context, policy, _observation(server=100.0))
    before = agent.n_observations
    # Now the same magnitude is a spike relative to the running median.
    agent.observe(context, policy, _observation(server=5000.0))
    assert agent.quarantined_observations == 1
    assert agent.n_observations == before


def test_set_cost_weights_rearms_spike_gate():
    agent = _make_agent(quarantine_min_history=3)
    env = static_scenario(mean_snr_db=35.0, rng=0,
                          config=TestbedConfig(n_levels=3))
    context = env.observe_context()
    policy = ControlPolicy.max_resources()
    for _ in range(3):
        agent.observe(context, policy, _observation(server=100.0))
    agent.set_cost_weights(CostWeights(delta1=50.0, delta2=50.0))
    # Costs are ~50x larger now; without rearming this would quarantine.
    agent.observe(context, policy, _observation(server=100.0))
    assert agent.quarantined_observations == 0


# -- EdgeBOL S0 degraded mode --------------------------------------------


def test_edgebol_degrades_to_s0_and_recovers():
    # Event 6 (the period-2 cost-head add) collapses a surrogate; event 7
    # is that head's recovery refit, which must also fail once for the
    # agent to actually serve a degraded S0 period.
    plan = FaultPlan(specs=(
        FaultSpec(kind="gp", mode="persistent", at=(6, 7), max_events=2),
    ))
    with use(plan):
        agent = _make_agent()
        env = static_scenario(mean_snr_db=35.0, rng=0,
                              config=TestbedConfig(n_levels=3))
        s0 = ControlPolicy.from_array(agent.control_grid[agent.s0_index])

        degraded_policies = []
        for t in range(6):
            context = env.observe_context()
            chosen = agent.select(context)
            if agent.degraded:
                degraded_policies.append(chosen)
            observation = env.step(chosen)
            agent.observe(context, chosen, observation)

        stats = agent.robustness_stats()
        assert stats["surrogate_failures"] >= 1
        assert stats["degraded_periods"] >= 1
        assert stats["recoveries"] >= 1
        assert not agent.degraded  # the injected fault cleared; refit worked
        for chosen in degraded_policies:
            assert np.allclose(chosen.to_array(), s0.to_array())


def test_edgebol_select_survives_surrogate_loss_without_plan():
    """Direct factor loss (no fault plan) also lands on the S0 path."""
    agent = _make_agent()
    env = static_scenario(mean_snr_db=35.0, rng=0,
                          config=TestbedConfig(n_levels=3))
    context = env.observe_context()
    policy = ControlPolicy.max_resources()
    for _ in range(3):
        agent.observe(context, policy, _observation())
    # Sabotage every head's factor the way an exhausted ladder would.
    for gp in agent.gps:
        gp._chol = None
        gp._alpha = None
    agent._surrogate_down = True
    chosen = agent.select(context)
    # Recovery refit succeeds immediately (the data is healthy).
    assert agent.robustness_stats()["recoveries"] == 1
    assert np.all(np.isfinite(chosen.to_array()))


# -- power meter clamp (regression) --------------------------------------


def test_power_meter_never_reads_negative_watts():
    meter = PowerMeter(noise_rel=5.0, rng=0)  # absurd noise to force it
    readings = [meter.read(1.0) for _ in range(200)]
    assert min(readings) >= 0.0
    assert any(r == 0.0 for r in readings)  # the clamp actually engaged
