"""Tests for the CLI and the offline hyperparameter-fit pipeline."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.core import EdgeBOL
from repro.experiments.hyperfit import (
    ProfilingDataset,
    collect_profiling_data,
    fit_from_profiling,
)
from repro.testbed.config import (
    CostWeights,
    ServiceConstraints,
    TestbedConfig,
)
from repro.testbed.scenarios import static_scenario


class TestCli:
    def test_parser_subcommands(self):
        parser = build_parser()
        args = parser.parse_args(["profile", "--figure", "3"])
        assert args.figure == 3

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_profile_writes_csv(self, tmp_path, capsys):
        code = main(["profile", "--figure", "4", "--out", str(tmp_path)])
        assert code == 0
        assert (tmp_path / "fig04_precision_serverpower.csv").exists()
        out = capsys.readouterr().out
        assert "wrote" in out

    def test_dynamic_runs_small(self, tmp_path, capsys):
        code = main([
            "dynamic", "--periods", "15", "--levels", "5",
            "--out", str(tmp_path),
        ])
        assert code == 0
        assert (tmp_path / "dynamic.csv").exists()

    def test_heterogeneous_runs_small(self, tmp_path):
        code = main([
            "heterogeneous", "--users", "2", "--delta2", "1",
            "--periods", "15", "--levels", "5", "--out", str(tmp_path),
        ])
        assert code == 0
        assert (tmp_path / "heterogeneous.csv").exists()

    def test_tariff_runs_small(self, tmp_path):
        code = main([
            "tariff", "--periods", "20", "--levels", "5",
            "--out", str(tmp_path),
        ])
        assert code == 0
        assert (tmp_path / "tariff.csv").exists()


class TestHyperfit:
    def make(self, seed=0):
        testbed = TestbedConfig(n_levels=5)
        env = static_scenario(mean_snr_db=35.0, rng=seed, config=testbed)
        agent = EdgeBOL(
            testbed.control_grid(), ServiceConstraints(0.4, 0.5),
            CostWeights(1.0, 1.0),
        )
        return env, agent

    def test_collect_shapes(self):
        env, agent = self.make()
        dataset = collect_profiling_data(env, agent, 12, rng=0)
        assert len(dataset) == 12
        assert dataset.inputs.shape == (12, 7)
        assert np.all(np.isfinite(dataset.inputs))
        assert np.all(dataset.delays <= 1.5 + 1e-9)

    def test_collect_validation(self):
        env, agent = self.make()
        with pytest.raises(ValueError):
            collect_profiling_data(env, agent, 0)

    def test_fit_changes_hyperparameters(self):
        env, agent = self.make()
        before = [gp.kernel.lengthscales.copy() for gp in agent.gps]
        fit_from_profiling(agent, env, n_samples=25, rng=0)
        changed = any(
            not np.allclose(gp.kernel.lengthscales, old)
            for gp, old in zip(agent.gps, before)
        )
        assert changed
        for gp in agent.gps:
            assert gp.noise_variance > 0

    def test_fitted_agent_still_learns(self):
        from repro.experiments.runner import run_agent

        env, agent = self.make(seed=1)
        fit_from_profiling(agent, env, n_samples=20, rng=1)
        log = run_agent(env, agent, 30)
        assert np.all(np.isfinite(log.cost))

    def test_dataset_is_dataclass(self):
        env, agent = self.make()
        dataset = collect_profiling_data(env, agent, 3, rng=0)
        assert isinstance(dataset, ProfilingDataset)
