"""Tests for the detection substrate: IoU, AP, mAP and the synthetic
detector calibration."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.detection import (
    Detection,
    GroundTruthObject,
    SyntheticDetector,
    average_precision,
    evaluate_map,
    iou,
)
from repro.service.images import SyntheticCocoDataset
from repro.service.profiles import expected_map

boxes = st.tuples(
    st.floats(0, 500), st.floats(0, 400),
    st.floats(1, 200), st.floats(1, 200),
)


class TestIoU:
    def test_identical_boxes(self):
        assert iou((0, 0, 10, 10), (0, 0, 10, 10)) == pytest.approx(1.0)

    def test_disjoint_boxes(self):
        assert iou((0, 0, 10, 10), (20, 20, 5, 5)) == 0.0

    def test_half_overlap(self):
        # Two 10x10 boxes overlapping in a 5x10 strip: IoU = 50/150.
        assert iou((0, 0, 10, 10), (5, 0, 10, 10)) == pytest.approx(1 / 3)

    def test_contained_box(self):
        assert iou((0, 0, 10, 10), (2, 2, 5, 5)) == pytest.approx(25 / 100)

    def test_touching_edges(self):
        assert iou((0, 0, 10, 10), (10, 0, 10, 10)) == 0.0

    @given(boxes, boxes)
    @settings(max_examples=100, deadline=None)
    def test_property_symmetric_and_bounded(self, a, b):
        v = iou(a, b)
        assert 0.0 <= v <= 1.0
        assert v == pytest.approx(iou(b, a))

    @given(boxes)
    @settings(max_examples=50, deadline=None)
    def test_property_self_iou_is_one(self, box):
        assert iou(box, box) == pytest.approx(1.0)


class TestAveragePrecision:
    def test_perfect_detector(self):
        ap = average_precision([0.9, 0.8, 0.7], [True, True, True], 3)
        assert ap == pytest.approx(1.0)

    def test_all_false_positives(self):
        ap = average_precision([0.9, 0.8], [False, False], 2)
        assert ap == 0.0

    def test_no_detections(self):
        assert average_precision([], [], 5) == 0.0

    def test_no_ground_truth(self):
        assert average_precision([0.9], [True], 0) == 0.0

    def test_missed_objects_cap_recall(self):
        # One match out of two ground truths: AP = 0.5 (precision 1 up
        # to recall 0.5, nothing beyond).
        ap = average_precision([0.9], [True], 2)
        assert ap == pytest.approx(0.5)

    def test_fp_before_tp_lowers_ap(self):
        clean = average_precision([0.9, 0.8], [True, True], 2)
        noisy = average_precision([0.95, 0.9, 0.8], [False, True, True], 2)
        assert noisy < clean

    def test_order_by_score_matters(self):
        # Same sets, but high-scoring FP hurts more than low-scoring FP.
        fp_high = average_precision([0.99, 0.5], [False, True], 1)
        fp_low = average_precision([0.99, 0.5], [True, False], 1)
        assert fp_low > fp_high

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            average_precision([0.9], [True, False], 1)

    @given(
        st.lists(
            st.tuples(st.floats(0.01, 0.99), st.booleans()),
            min_size=0, max_size=30,
        ),
        st.integers(1, 20),
    )
    @settings(max_examples=80, deadline=None)
    def test_property_ap_bounded(self, dets, n_gt):
        scores = [d[0] for d in dets]
        matches = [d[1] for d in dets]
        # matches cannot exceed ground truths
        capped = []
        seen = 0
        for m in matches:
            if m and seen < n_gt:
                capped.append(True)
                seen += 1
            else:
                capped.append(False)
        ap = average_precision(scores, capped, n_gt)
        assert 0.0 <= ap <= 1.0


class TestEvaluateMap:
    def _gt(self, class_id=0, bbox=(10, 10, 50, 50)):
        return GroundTruthObject(class_id=class_id, bbox=bbox)

    def _det(self, class_id=0, bbox=(10, 10, 50, 50), score=0.9):
        return Detection(class_id=class_id, bbox=bbox, score=score)

    def test_perfect_detection(self):
        gt = [[self._gt()]]
        det = [[self._det()]]
        assert evaluate_map(gt, det) == pytest.approx(1.0)

    def test_wrong_class_no_match(self):
        gt = [[self._gt(class_id=0)]]
        det = [[self._det(class_id=1)]]
        assert evaluate_map(gt, det) == 0.0

    def test_poor_localization_below_threshold(self):
        gt = [[self._gt(bbox=(0, 0, 10, 10))]]
        det = [[self._det(bbox=(8, 8, 10, 10))]]
        assert evaluate_map(gt, det, iou_threshold=0.5) == 0.0

    def test_double_detection_counts_one_tp(self):
        gt = [[self._gt()]]
        det = [[self._det(score=0.9), self._det(score=0.8)]]
        # Second detection is an unmatched duplicate -> FP at lower rank;
        # AP stays 1.0 only if precision envelope unaffected at recall 1.
        value = evaluate_map(gt, det)
        assert value == pytest.approx(1.0)

    def test_mean_over_classes(self):
        gt = [[self._gt(class_id=0), self._gt(class_id=1, bbox=(100, 100, 40, 40))]]
        det = [[self._det(class_id=0)]]  # class 1 entirely missed
        assert evaluate_map(gt, det) == pytest.approx(0.5)

    def test_empty_everything(self):
        assert evaluate_map([], []) == 0.0

    def test_misaligned_batches(self):
        with pytest.raises(ValueError):
            evaluate_map([[]], [])


class TestSyntheticDetectorCalibration:
    @pytest.mark.parametrize("resolution", [0.25, 0.5, 0.75, 1.0])
    def test_matches_profile(self, resolution):
        """Empirical mAP of the synthetic detector tracks the closed form."""
        dataset = SyntheticCocoDataset(rng=0)
        detector = SyntheticDetector(rng=1)
        batch = dataset.sample_batch(250)
        measured = detector.measure_map(batch, resolution)
        assert measured == pytest.approx(expected_map(resolution), abs=0.09)

    def test_monotone_in_resolution(self):
        dataset = SyntheticCocoDataset(rng=2)
        detector = SyntheticDetector(rng=3)
        batch = dataset.sample_batch(200)
        maps = [detector.measure_map(batch, r) for r in (0.25, 0.6, 1.0)]
        assert maps[0] < maps[1] < maps[2]

    def test_detections_are_valid(self):
        dataset = SyntheticCocoDataset(rng=4)
        detector = SyntheticDetector(rng=5)
        image = dataset.sample_image()
        for det in detector.detect(image, 0.5):
            assert 0.0 <= det.score <= 1.0
            assert det.bbox[2] > 0 and det.bbox[3] > 0
