"""Tests for repro.utils.stats."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.stats import RunningStats, percentile_band

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestRunningStats:
    def test_empty_is_nan(self):
        s = RunningStats()
        assert math.isnan(s.mean)
        assert math.isnan(s.variance)
        assert math.isnan(s.minimum)

    def test_single_value(self):
        s = RunningStats()
        s.push(3.0)
        assert s.mean == 3.0
        assert s.variance == 0.0
        assert s.minimum == s.maximum == 3.0

    def test_matches_numpy(self):
        values = [1.5, -2.0, 7.3, 0.0, 4.4]
        s = RunningStats()
        s.extend(values)
        assert s.mean == pytest.approx(np.mean(values))
        assert s.variance == pytest.approx(np.var(values))
        assert s.std == pytest.approx(np.std(values))

    def test_weighted_update(self):
        s = RunningStats()
        s.push(1.0, weight=2.0)
        s.push(4.0, weight=1.0)
        assert s.mean == pytest.approx(2.0)

    def test_invalid_weight(self):
        with pytest.raises(ValueError):
            RunningStats().push(1.0, weight=0.0)

    def test_merge_matches_combined(self):
        a_vals, b_vals = [1.0, 2.0, 3.0], [10.0, 20.0]
        a, b = RunningStats(), RunningStats()
        a.extend(a_vals)
        b.extend(b_vals)
        merged = a.merge(b)
        combined = a_vals + b_vals
        assert merged.mean == pytest.approx(np.mean(combined))
        assert merged.variance == pytest.approx(np.var(combined))
        assert merged.minimum == min(combined)
        assert merged.maximum == max(combined)

    def test_merge_with_empty(self):
        a = RunningStats()
        a.extend([1.0, 2.0])
        merged = a.merge(RunningStats())
        assert merged.mean == pytest.approx(1.5)

    @given(st.lists(finite_floats, min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_property_matches_numpy(self, values):
        s = RunningStats()
        s.extend(values)
        assert s.mean == pytest.approx(np.mean(values), rel=1e-9, abs=1e-6)
        assert s.variance == pytest.approx(np.var(values), rel=1e-6, abs=1e-5)

    @given(
        st.lists(finite_floats, min_size=1, max_size=20),
        st.lists(finite_floats, min_size=1, max_size=20),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_merge_equals_extend(self, xs, ys):
        a, b, c = RunningStats(), RunningStats(), RunningStats()
        a.extend(xs)
        b.extend(ys)
        c.extend(xs + ys)
        merged = a.merge(b)
        assert merged.mean == pytest.approx(c.mean, rel=1e-9, abs=1e-6)
        assert merged.variance == pytest.approx(c.variance, rel=1e-6, abs=1e-5)


class TestPercentileBand:
    def test_shapes(self):
        runs = np.random.default_rng(0).normal(size=(10, 20))
        median, low, high = percentile_band(runs)
        assert median.shape == low.shape == high.shape == (20,)
        assert np.all(low <= median + 1e-12)
        assert np.all(median <= high + 1e-12)

    def test_single_run(self):
        runs = np.array([[1.0, 2.0, 3.0]])
        median, low, high = percentile_band(runs)
        np.testing.assert_allclose(median, [1.0, 2.0, 3.0])
        np.testing.assert_allclose(low, high)

    def test_wrong_ndim_raises(self):
        with pytest.raises(ValueError):
            percentile_band(np.zeros(5))

    def test_bad_percentiles_raise(self):
        with pytest.raises(ValueError):
            percentile_band(np.zeros((2, 3)), low=90, high=10)
