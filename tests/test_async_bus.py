"""Tests for the deterministic event loop and the async message bus.

Covers the :class:`~repro.oran.loop.VirtualTimeLoop` scheduling
contract (FIFO canon, virtual time, seeded interleaving, deadlock and
livelock detection), mailbox backpressure policies, the async bus
publish/consume pipeline, and the two property-based invariants of
``docs/CONTROL_PLANE.md``:

* no backpressure policy ever loses the *newest* E2 indication;
* mailbox counters reconcile with published counts once the loop is
  idle (``puts == delivered + dropped + coalesced + queued +
  blocked_waiting``).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.oran.bus import MAILBOX_POLICIES, AsyncMessageBus, Mailbox, post
from repro.oran.loop import Future, VirtualTimeLoop, sleep
from repro.oran.messages import E2Indication, E2IndicationBatch
from repro.telemetry import spans


# -- the virtual-time loop ----------------------------------------------


class TestVirtualTimeLoop:
    def test_fifo_canonical_order(self):
        loop = VirtualTimeLoop()
        order = []

        async def job(tag):
            order.append(tag)

        for tag in "abc":
            loop.create_task(job(tag))
        loop.run_until_idle()
        assert order == ["a", "b", "c"]

    def test_virtual_time_only_advances_on_timers(self):
        loop = VirtualTimeLoop()
        stamps = []

        async def sleeper(delay):
            await sleep(delay)
            stamps.append((delay, loop.now))

        loop.create_task(sleeper(2.0))
        loop.create_task(sleeper(1.0))
        loop.run_until_idle()
        # Timers fire in deadline order and set virtual time exactly.
        assert stamps == [(1.0, 1.0), (2.0, 2.0)]

    def test_sleep_zero_yields_behind_ready_tasks(self):
        loop = VirtualTimeLoop()
        order = []

        async def yielder():
            order.append("first-half")
            await sleep(0)
            order.append("second-half")

        async def other():
            order.append("other")

        loop.create_task(yielder())
        loop.create_task(other())
        loop.run_until_idle()
        assert order == ["first-half", "other", "second-half"]
        assert loop.now == 0.0

    def test_future_handoff_and_await_task(self):
        loop = VirtualTimeLoop()
        gate = loop.future()

        async def producer():
            gate.set_result(41)
            return "produced"

        async def consumer():
            value = await gate
            return value + 1

        consumer_task = loop.create_task(consumer())

        async def main():
            await loop.create_task(producer())
            return await consumer_task

        assert loop.run_until_complete(main()) == 42

    def test_deadlock_detected(self):
        loop = VirtualTimeLoop()

        async def waits_forever():
            await loop.future()

        with pytest.raises(RuntimeError, match="deadlock"):
            loop.run_until_complete(waits_forever())

    def test_livelock_budget(self):
        loop = VirtualTimeLoop()

        async def spinner():
            while True:
                await sleep(0)

        loop.create_task(spinner())
        with pytest.raises(RuntimeError, match="steps without going idle"):
            loop.run_until_idle(max_steps=50)

    def test_seeded_interleaving_is_reproducible_and_complete(self):
        def run(seed):
            loop = VirtualTimeLoop(seed=seed)
            order = []

            async def job(tag):
                order.append(tag)
                await sleep(0)
                order.append(tag.upper())

            for tag in "abcdef":
                loop.create_task(job(tag))
            loop.run_until_idle()
            return order

        assert run(3) == run(3)                   # same seed, same schedule
        assert sorted(run(3)) == sorted(run(4))   # nothing lost
        runs = {tuple(run(seed)) for seed in range(8)}
        assert len(runs) > 1, "seeded scheduling never varied the order"

    def test_span_context_propagates_into_tasks(self):
        loop = VirtualTimeLoop()
        parents = []

        async def job():
            parents.append(spans.current_span())

        with spans.Span("outer") as outer:
            loop.create_task(job())
        # The task runs after `outer` closed on the main stack, yet its
        # captured context still nests it under the spawning span.
        loop.run_until_idle()
        assert parents == [outer]


# -- mailboxes -----------------------------------------------------------


def _fill(loop, box, items):
    """Publish ``items`` into ``box`` as one task per put."""
    for item in items:
        loop.create_task(box.put(item), name=f"put:{item}")
    loop.run_until_idle()


class TestMailbox:
    def test_block_policy_parks_publisher_until_get(self):
        loop = VirtualTimeLoop()
        box = Mailbox(loop, capacity=1, policy="block")
        _fill(loop, box, ["m0", "m1"])
        assert len(box) == 1 and box.blocked_waiting == 1

        got = []

        async def take():
            got.append(await box.get())

        loop.create_task(take())
        loop.run_until_idle()
        # The blocked put's message moved into the freed slot.
        assert got == ["m0"] and len(box) == 1 and box.blocked_waiting == 0
        loop.create_task(take())
        loop.run_until_idle()
        assert got == ["m0", "m1"]

    def test_drop_oldest_evicts_head(self):
        loop = VirtualTimeLoop()
        box = Mailbox(loop, capacity=2, policy="drop-oldest")
        _fill(loop, box, ["m0", "m1", "m2"])
        assert list(box._queue) == ["m1", "m2"]
        assert box.dropped == 1

    def test_coalesce_keeps_only_newest(self):
        loop = VirtualTimeLoop()
        box = Mailbox(loop, capacity=2, policy="coalesce")
        _fill(loop, box, ["m0", "m1", "m2"])
        assert list(box._queue) == ["m2"]
        assert box.coalesced == 2

    def test_rejects_bad_configuration(self):
        loop = VirtualTimeLoop()
        with pytest.raises(ValueError, match="capacity"):
            Mailbox(loop, capacity=0)
        with pytest.raises(ValueError, match="policy"):
            Mailbox(loop, policy="backoff")


# -- the async bus -------------------------------------------------------


class TestAsyncMessageBus:
    def test_publish_subscribe_via_drain(self):
        bus = AsyncMessageBus()
        seen = []
        bus.subscribe("t", seen.append)
        post(bus, "t", "hello")
        assert seen == []                 # nothing delivered until drain
        bus.drain()
        assert seen == ["hello"]
        assert bus.history("t") == ["hello"]

    def test_multiple_subscribers_fan_out_per_mailbox_order(self):
        bus = AsyncMessageBus()
        log = []
        bus.subscribe("t", lambda m: log.append(("a", m)))
        bus.subscribe("t", lambda m: log.append(("b", m)))
        post(bus, "t", 1)
        post(bus, "t", 2)
        bus.drain()
        # Each subscriber's mailbox preserves publish order; the
        # interleaving *between* subscribers is per-consumer (each
        # consumer drains its queue), unlike the sync bus's per-message
        # fan-out — ordering is a per-mailbox contract.
        assert [m for tag, m in log if tag == "a"] == [1, 2]
        assert [m for tag, m in log if tag == "b"] == [1, 2]
        assert len(log) == 4

    def test_unsubscribe_stops_delivery(self):
        bus = AsyncMessageBus()
        seen = []
        bus.subscribe("t", seen.append)
        bus.unsubscribe("t", seen.append)
        post(bus, "t", 1)
        bus.drain()
        assert seen == []

    def test_async_handlers_are_awaited(self):
        bus = AsyncMessageBus()
        seen = []

        async def handler(message):
            await sleep(0)
            seen.append(message)

        bus.subscribe("t", handler)
        post(bus, "t", "x")
        bus.drain()
        assert seen == ["x"]

    def test_topic_configuration_applies_to_new_subscriptions(self):
        bus = AsyncMessageBus()
        bus.configure_topic("kpi", capacity=1, policy="coalesce")
        seen = []
        bus.subscribe("kpi", seen.append)
        stats = bus.mailbox_stats()["kpi"][0]
        assert stats["capacity"] == 1 and stats["policy"] == "coalesce"

    def test_handler_exception_fails_fast_at_drain(self):
        bus = AsyncMessageBus()

        def handler(message):
            raise ValueError("boom")

        bus.subscribe("t", handler)
        post(bus, "t", 1)
        with pytest.raises(ValueError, match="boom"):
            bus.drain()


# -- property tests (docs/CONTROL_PLANE.md invariants) -------------------


@st.composite
def _mailbox_workload(draw):
    """(policy, capacity, messages, interleaved get count)."""
    policy = draw(st.sampled_from(MAILBOX_POLICIES))
    capacity = draw(st.integers(min_value=1, max_value=8))
    n_messages = draw(st.integers(min_value=1, max_value=40))
    gets = draw(st.integers(min_value=0, max_value=n_messages))
    return policy, capacity, n_messages, gets


@given(_mailbox_workload())
@settings(max_examples=120, deadline=None)
def test_backpressure_never_loses_newest_indication(workload):
    """Whatever the policy, the last-published E2 indication survives.

    ``block`` keeps everything, ``drop-oldest`` evicts from the head,
    ``coalesce`` clears all *but* the newcomer — so the newest message
    must always be queued, in a parked publisher, or already delivered.
    """
    policy, capacity, n_messages, gets = workload
    loop = VirtualTimeLoop()
    box = Mailbox(loop, capacity=capacity, policy=policy)
    indications = [
        E2Indication(node_id="enb", kpis={"bs_power_w": float(i)}, period=i)
        for i in range(n_messages)
    ]
    delivered = []

    async def consumer(count):
        for _ in range(count):
            delivered.append(await box.get())

    loop.create_task(consumer(gets), name="consumer")
    for indication in indications:
        loop.create_task(box.put(indication))
    loop.run_until_idle()

    newest = indications[-1]
    surviving = (
        delivered
        + list(box._queue)
        + [message for _gate, message in box._putters]
    )
    assert newest in surviving, (
        f"policy {policy!r} (capacity {capacity}) lost the newest "
        f"indication: {gets} gets over {n_messages} puts"
    )
    # Delivery preserves publish order for what it does deliver.
    periods = [i.period for i in delivered]
    assert periods == sorted(periods)


@given(_mailbox_workload())
@settings(max_examples=120, deadline=None)
def test_mailbox_counters_reconcile(workload):
    """Once idle: puts == delivered + dropped + coalesced + queued
    + blocked_waiting — no message unaccounted for."""
    policy, capacity, n_messages, gets = workload
    loop = VirtualTimeLoop()
    box = Mailbox(loop, capacity=capacity, policy=policy)
    for i in range(n_messages):
        loop.create_task(box.put(i))

    async def consumer(count):
        for _ in range(count):
            await box.get()

    loop.create_task(consumer(gets), name="consumer")
    loop.run_until_idle()

    stats = box.stats()
    assert stats["puts"] == n_messages
    assert stats["puts"] == (
        stats["delivered"] + stats["dropped"] + stats["coalesced"]
        + stats["queued"] + stats["blocked_waiting"]
    ), f"counters do not reconcile: {stats}"


@given(
    policy=st.sampled_from(MAILBOX_POLICIES),
    capacity=st.integers(min_value=1, max_value=4),
    n_messages=st.integers(min_value=1, max_value=30),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=60, deadline=None)
def test_bus_counters_reconcile_with_published(policy, capacity, n_messages,
                                               seed):
    """Bus-level law under adversarial seeded interleaving: every
    accepted publish is enqueued to every subscriber's mailbox, and each
    mailbox reconciles its counters after the drain barrier."""
    bus = AsyncMessageBus(seed=seed, default_capacity=capacity,
                          default_policy=policy)
    seen = []
    bus.subscribe("e2.indication", seen.append)
    bus.subscribe("e2.indication", lambda m: None)
    for i in range(n_messages):
        post(bus, "e2.indication", i)
    bus.drain()

    history = bus.history("e2.indication")
    assert len(history) == n_messages
    assert sorted(history) == list(range(n_messages))
    # The seeded scheduler may run publish tasks in any order (history
    # records the fan-out order chosen) and may let publishers outrun
    # the consumer, so lossy policies can drop — but delivery must be
    # an order-preserving subsequence of history and the newest message
    # must always arrive.
    it = iter(history)
    assert all(m in it for m in seen), "delivery reordered vs history"
    assert seen[-1] == history[-1], "newest message lost"
    for stats in bus.mailbox_stats()["e2.indication"]:
        assert stats["puts"] == n_messages
        assert stats["blocked_waiting"] == 0, "drain left a parked publisher"
        assert stats["queued"] == 0, "drain left an unconsumed message"
        assert stats["puts"] == (
            stats["delivered"] + stats["dropped"] + stats["coalesced"]
        )


# -- E2 indication batching ---------------------------------------------


class TestE2Batching:
    def test_batch_dataclass_rejects_empty(self):
        with pytest.raises(ValueError, match="must not be empty"):
            E2IndicationBatch(node_id="enb", indications=(), period=0)

    def test_batching_flushes_at_size_and_on_demand(self):
        from repro.oran.e2 import E2Node, E2Termination

        bus = AsyncMessageBus()
        term = E2Termination(bus)
        node = E2Node(node_id="enb", bus=bus, batch_size=3)
        bus.drain()
        seen = []
        term.subscribe_kpis(subscriber="kpi", kpi_names=("bs_power_w",))
        term.register_indication_handler(seen.append)
        bus.drain()

        for i in range(4):
            node.report_kpis({"bs_power_w": float(i)})
        bus.drain()
        # One full batch of 3 fanned out; the 4th is still pending.
        assert [i.kpis["bs_power_w"] for i in seen] == [0.0, 1.0, 2.0]
        assert node.pending_indications == 1
        batches = bus.history("e2.indication")
        assert len(batches) == 1 and len(batches[0].indications) == 3

        node.flush()
        bus.drain()
        assert [i.kpis["bs_power_w"] for i in seen] == [0.0, 1.0, 2.0, 3.0]
        assert node.pending_indications == 0
