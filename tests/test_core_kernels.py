"""Tests for the kernel family (eq. 5-6 of the paper)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.kernels import Matern, RBF

points = st.lists(
    st.lists(st.floats(-2, 2, allow_nan=False), min_size=3, max_size=3),
    min_size=1, max_size=8,
)


class TestScaledDistance:
    def test_zero_at_identical_points(self):
        k = Matern(lengthscales=[1.0, 1.0])
        x = np.array([[0.3, 0.7]])
        assert k.scaled_distance(x, x)[0, 0] == pytest.approx(0.0)

    def test_anisotropy(self):
        """Eq. 5: distances scale per dimension (anisotropic)."""
        k = Matern(lengthscales=[1.0, 10.0])
        a = np.array([[0.0, 0.0]])
        along_first = np.array([[1.0, 0.0]])
        along_second = np.array([[0.0, 1.0]])
        d1 = k.scaled_distance(a, along_first)[0, 0]
        d2 = k.scaled_distance(a, along_second)[0, 0]
        assert d1 == pytest.approx(1.0)
        assert d2 == pytest.approx(0.1)

    def test_matches_direct_formula(self):
        ls = np.array([0.5, 2.0, 1.0])
        k = Matern(lengthscales=ls)
        x = np.array([[0.1, 0.2, 0.3]])
        y = np.array([[0.4, -0.1, 0.9]])
        direct = np.sqrt(np.sum(((x - y) / ls) ** 2))
        assert k.scaled_distance(x, y)[0, 0] == pytest.approx(direct)

    def test_dimension_mismatch(self):
        k = Matern(lengthscales=[1.0, 1.0])
        with pytest.raises(ValueError):
            k.scaled_distance(np.zeros((1, 3)), np.zeros((1, 3)))


class TestMatern:
    def test_paper_equation_six(self):
        """k(z,z') = s (1 + sqrt(3) d) exp(-sqrt(3) d) for nu=3/2."""
        k = Matern(lengthscales=[1.0], output_scale=2.0, nu=1.5)
        d = 0.7
        expected = 2.0 * (1 + np.sqrt(3) * d) * np.exp(-np.sqrt(3) * d)
        value = k(np.array([[0.0]]), np.array([[0.7]]))[0, 0]
        assert value == pytest.approx(expected)

    def test_value_at_zero_is_output_scale(self):
        for nu in (0.5, 1.5, 2.5):
            k = Matern(lengthscales=[1.0, 1.0], output_scale=3.0, nu=nu)
            x = np.array([[0.1, 0.2]])
            assert k(x, x)[0, 0] == pytest.approx(3.0)

    def test_decreasing_with_distance(self):
        k = Matern(lengthscales=[1.0], nu=1.5)
        x = np.zeros((1, 1))
        values = [
            k(x, np.array([[d]]))[0, 0] for d in (0.0, 0.5, 1.0, 2.0, 5.0)
        ]
        assert all(b < a for a, b in zip(values, values[1:]))

    def test_smoothness_ordering(self):
        """At moderate distance, higher nu decays differently but all
        agree at 0 and infinity."""
        x, y = np.zeros((1, 1)), np.array([[3.0]])
        values = {
            nu: Matern(lengthscales=[1.0], nu=nu)(x, y)[0, 0]
            for nu in (0.5, 1.5, 2.5)
        }
        assert all(0 < v < 0.2 for v in values.values())

    def test_invalid_nu(self):
        with pytest.raises(ValueError):
            Matern(lengthscales=[1.0], nu=2.0)

    def test_invalid_lengthscales(self):
        with pytest.raises(ValueError):
            Matern(lengthscales=[1.0, -1.0])
        with pytest.raises(ValueError):
            Matern(lengthscales=[])

    def test_diag(self):
        k = Matern(lengthscales=[1.0, 1.0], output_scale=4.0)
        np.testing.assert_allclose(k.diag(np.zeros((3, 2))), [4.0, 4.0, 4.0])

    @given(points)
    @settings(max_examples=40, deadline=None)
    def test_property_psd(self, pts):
        """Gram matrices are positive semi-definite."""
        x = np.array(pts)
        k = Matern(lengthscales=[0.7, 1.3, 0.9], nu=1.5)
        gram = k(x, x)
        eigenvalues = np.linalg.eigvalsh(gram)
        assert eigenvalues.min() > -1e-8

    @given(points)
    @settings(max_examples=30, deadline=None)
    def test_property_symmetric(self, pts):
        x = np.array(pts)
        k = Matern(lengthscales=[1.0, 1.0, 1.0])
        gram = k(x, x)
        np.testing.assert_allclose(gram, gram.T, atol=1e-12)


class TestRBF:
    def test_gaussian_shape(self):
        k = RBF(lengthscales=[1.0])
        value = k(np.array([[0.0]]), np.array([[1.0]]))[0, 0]
        assert value == pytest.approx(np.exp(-0.5))

    def test_smoother_than_matern(self):
        """RBF decays slower near zero (infinitely smooth)."""
        rbf = RBF(lengthscales=[1.0])
        matern = Matern(lengthscales=[1.0], nu=1.5)
        x, y = np.zeros((1, 1)), np.array([[0.2]])
        assert rbf(x, y)[0, 0] > matern(x, y)[0, 0]


class TestLogParams:
    def test_roundtrip(self):
        k = Matern(lengthscales=[0.5, 2.0], output_scale=3.0, nu=2.5)
        k2 = k.with_log_params(k.get_log_params())
        np.testing.assert_allclose(k2.lengthscales, k.lengthscales)
        assert k2.output_scale == pytest.approx(k.output_scale)
        assert k2.nu == k.nu

    def test_wrong_size(self):
        k = Matern(lengthscales=[1.0, 1.0])
        with pytest.raises(ValueError):
            k.with_log_params(np.zeros(5))
