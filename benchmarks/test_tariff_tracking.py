"""Tariff tracking (extension): day/night energy prices at runtime.

The paper motivates delta1/delta2 with time-varying electricity prices
(Section 4.3) but evaluates static weights; this benchmark runs the
day/night scenario with both the paper's coupled cost GP and the
decoupled power-GP extension.
"""

import numpy as np
from bench_utils import run_once, save_rows

from repro.experiments.tariff import (
    TariffSetting,
    band_costs,
    default_tariff,
    run_tariff_tracking,
)
from repro.utils.ascii import render_table

SETTING = TariffSetting(n_periods=240, n_levels=7)


def run_both():
    tariff = default_tariff(SETTING)
    coupled = run_tariff_tracking(False, setting=SETTING, tariff=tariff, seed=0)
    decoupled = run_tariff_tracking(True, setting=SETTING, tariff=tariff, seed=0)
    return tariff, coupled, decoupled


def test_tariff_tracking(benchmark):
    tariff, coupled, decoupled = run_once(benchmark, run_both)

    rows = []
    for name, log in (("coupled", coupled), ("decoupled", decoupled)):
        bands = band_costs(log, tariff, SETTING)
        delay_viol, _ = log.violation_rates(burn_in=30)
        for (d1, d2), cost in sorted(bands.items()):
            rows.append({
                "mode": name, "delta1": d1, "delta2": d2,
                "mean_cost": cost, "delay_violation_rate": delay_viol,
            })
    save_rows("tariff_tracking", rows)
    print()
    print("Tariff tracking — day/night delta2 switching")
    print(render_table(
        ["mode", "delta1", "delta2", "mean band cost", "delay viol."],
        [[r["mode"], r["delta1"], r["delta2"], r["mean_cost"],
          r["delay_violation_rate"]] for r in rows],
    ))

    # Both modes price day watts higher than night watts.
    for name, log in (("coupled", coupled), ("decoupled", decoupled)):
        bands = band_costs(log, tariff, SETTING)
        assert bands[(1.0, 8.0)] > bands[(1.0, 1.0)]
    # Both stay feasible throughout the price switches.
    for log in (coupled, decoupled):
        delay_viol, map_viol = log.violation_rates(burn_in=30)
        assert delay_viol < 0.1 and map_viol < 0.1
    # The decoupled extension is never materially worse, despite
    # re-pricing instantly at every switch.
    assert np.mean(decoupled.cost) <= np.mean(coupled.cost) * 1.05
