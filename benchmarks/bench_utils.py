"""Shared helpers for the figure-reproduction benchmarks.

Each benchmark regenerates one figure of the paper: it runs the
corresponding experiment (at a tractable scale — the modules in
``repro.experiments`` expose the paper-scale parameterisations), prints
the same series the paper plots, saves a CSV under ``results/`` and
asserts the qualitative *shape* the paper reports.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.experiments.recorder import write_csv

#: Output directory for regenerated figure data.
RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def save_rows(name: str, rows) -> Path:
    """Persist experiment rows as results/<name>.csv."""
    return write_csv(RESULTS_DIR / f"{name}.csv", rows)


def group_mean(rows, group_keys, value_key):
    """Mean of ``value_key`` per combination of ``group_keys``."""
    groups: dict[tuple, list[float]] = {}
    for row in rows:
        key = tuple(row[k] for k in group_keys)
        groups.setdefault(key, []).append(float(row[value_key]))
    return {k: float(np.mean(v)) for k, v in groups.items()}


def run_once(benchmark, fn):
    """Time ``fn`` exactly once through pytest-benchmark.

    The experiments are long-running simulations; repeating them for
    statistical timing would multiply the suite cost for no insight.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
