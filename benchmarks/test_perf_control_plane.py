"""Perf benchmark: sustained control-plane throughput vs fleet size.

Runs :class:`~repro.oran.runtime.FleetRuntime` fleets of 1, 8 and 32
cells through the event-loop control plane and measures sustained
decisions per wall-clock second.  Two agent flavours per size:

* **stub** — a constant controller, isolating the plane itself (bus,
  mailboxes, A1/E2/O1 hops, alert router, load harness) plus the
  testbed step from the learning cost;
* **edgebol** — the real learner at a small grid, the end-to-end
  figure (informational; BO dominates, so it scales like the agent,
  not the plane).

The scaling gate is on the stub rows: aggregate decisions/sec at 32
cells must stay within 2x of the single-cell figure — i.e. the
*per-decision* control-plane cost may at most double between a lone
cell and a 32-cell fleet sharing one bus, one A1 service and one
event loop.  (Literal per-cell throughput in one process necessarily
falls ~n_cells-fold; the sustained aggregate rate is the capacity
figure that matters and is what ``BENCH_control_plane.json``
records, with per-cell rates alongside for reference.)
"""

import json
import time
from pathlib import Path

from repro.experiments.fleet import run_fleet_cell_sim
from repro.testbed.config import ControlPolicy

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_control_plane.json"

#: Fleet sizes benchmarked (the acceptance floor is {1, 8, 32}).
FLEET_SIZES = (1, 8, 32)
PERIODS = 30
SEED = 11
#: Aggregate stub decisions/sec at 32 cells must stay within this
#: factor of the 1-cell figure (per-decision plane cost at most 2x).
DEGRADATION_LIMIT = 2.0


class _StubAgent:
    """Constant mid-grid controller: zero learning cost, full plane."""

    def select(self, context):
        return ControlPolicy(
            resolution=0.5, airtime=0.5, gpu_speed=0.5, mcs_fraction=1.0
        )

    def observe(self, context, policy, observation):
        return float(observation.server_power_w + observation.bs_power_w)


def _bench(n_cells: int, make_agent=None) -> dict:
    """One timed fleet run -> a result row."""
    started = time.perf_counter()
    result = run_fleet_cell_sim(
        n_cells=n_cells,
        n_periods=PERIODS,
        seed=SEED,
        levels=4,
        load_profile="diurnal",
        make_agent=make_agent,
    )
    wall_s = time.perf_counter() - started
    decisions_per_s = result.decisions / wall_s
    return {
        "cells": n_cells,
        "periods": PERIODS,
        "decisions": result.decisions,
        "wall_s": wall_s,
        "decisions_per_s": decisions_per_s,
        "per_cell_decisions_per_s": decisions_per_s / n_cells,
        "loop_steps": result.loop_steps,
    }


def test_perf_control_plane_scaling():
    stub_rows = [_bench(n, make_agent=_StubAgent) for n in FLEET_SIZES]
    agent_rows = [_bench(n) for n in FLEET_SIZES]

    payload = {
        "benchmark": (
            "sustained control-plane decisions/sec vs fleet size "
            "(shared event-loop SMO)"
        ),
        "unit": "decisions per wall-clock second (aggregate over cells)",
        "settings": {
            "fleet_sizes": list(FLEET_SIZES), "periods": PERIODS,
            "seed": SEED, "load": "diurnal", "degradation_limit":
            DEGRADATION_LIMIT,
        },
        "stub_agent": stub_rows,
        "edgebol_agent": agent_rows,
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    print()
    print(f"{'agent':>8} {'cells':>6} {'dec/s':>10} {'per-cell':>10}")
    for label, rows in (("stub", stub_rows), ("edgebol", agent_rows)):
        for row in rows:
            print(f"{label:>8} {row['cells']:>6} "
                  f"{row['decisions_per_s']:>10.1f} "
                  f"{row['per_cell_decisions_per_s']:>10.1f}")

    one = stub_rows[0]["decisions_per_s"]
    big = stub_rows[-1]["decisions_per_s"]
    assert big >= one / DEGRADATION_LIMIT, (
        f"aggregate control-plane throughput fell from {one:.1f} to "
        f"{big:.1f} decisions/s between 1 and {FLEET_SIZES[-1]} cells — "
        f"per-decision plane cost grew more than {DEGRADATION_LIMIT}x"
    )
