"""Figure 14: EdgeBOL vs DDPG under runtime constraint changes.

Paper setting: 3000 periods with constraint switches at t = 1000 and
t = 2000.  Reduced here to 600 periods with switches at 200/400 (same
three-phase structure); paper-scale via
``repro.experiments.comparison.ComparisonSetting()``.
"""

import numpy as np
from bench_utils import run_once, save_rows

from repro.experiments.comparison import (
    ComparisonSetting,
    phase_summary,
    run_ddpg_comparison,
    run_edgebol_comparison,
    violation_series,
)
from repro.utils.ascii import render_chart, render_table

SETTING = ComparisonSetting(
    n_periods=600, first_switch=200, second_switch=400, n_levels=7,
    max_observations=400,
)


def run_both():
    return (
        run_edgebol_comparison(SETTING, seed=0),
        run_ddpg_comparison(SETTING, seed=0),
    )


def test_fig14_vs_ddpg(benchmark):
    edgebol_log, ddpg_log = run_once(benchmark, run_both)
    save_rows("fig14_edgebol", edgebol_log.as_dict())
    save_rows("fig14_ddpg", ddpg_log.as_dict())

    e_phases = phase_summary(edgebol_log, SETTING)
    d_phases = phase_summary(ddpg_log, SETTING)
    print()
    print("Figure 14 — EdgeBOL vs DDPG across constraint regimes")
    print(render_table(
        ["agent", "phase", "mean cost", "mean delay viol.", "mean mAP viol."],
        [
            ["EdgeBOL", p["phase"], p["mean_cost"],
             p["mean_delay_violation"], p["mean_map_violation"]]
            for p in e_phases
        ] + [
            ["DDPG", p["phase"], p["mean_cost"],
             p["mean_delay_violation"], p["mean_map_violation"]]
            for p in d_phases
        ],
    ))
    print(render_chart(
        {"EdgeBOL": edgebol_log.map_score, "DDPG": ddpg_log.map_score},
        title="mAP over time (constraint switches at 200, 400)",
    ))

    e_viol = violation_series(edgebol_log)
    d_viol = violation_series(ddpg_log)

    # Paper shape 1: EdgeBOL's constraint violations are much smaller
    # than DDPG's across the whole run.
    e_total = e_viol["delay_violation"].mean() + e_viol["map_violation"].mean()
    d_total = d_viol["delay_violation"].mean() + d_viol["map_violation"].mean()
    assert e_total < d_total * 0.6

    # Paper shape 2: right after each switch, EdgeBOL re-converges
    # almost instantly (tiny violations within a short window).
    for switch in (SETTING.first_switch, SETTING.second_switch):
        window = slice(switch + 10, switch + 60)
        assert e_viol["delay_violation"][window].mean() < 0.05
        assert e_viol["map_violation"][window].mean() < 0.05

    # Paper shape 3: both agents produce finite costs throughout.
    assert np.all(np.isfinite(edgebol_log.cost))
    assert np.all(np.isfinite(ddpg_log.cost))
