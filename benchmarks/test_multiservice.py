"""Multi-service slicing (Section 4.4): per-slice EdgeBOL agents on a
shared GPU and cell — the paper's practical design, evaluated."""

from bench_utils import run_once, save_rows

from repro.experiments.multiservice import (
    MultiServiceSetting,
    run_per_slice_edgebol,
    summary,
)
from repro.utils.ascii import render_table

SETTING = MultiServiceSetting(n_periods=130, n_levels=7)


def test_multiservice_slicing(benchmark):
    ar_log, sv_log = run_once(
        benchmark, lambda: run_per_slice_edgebol(SETTING, seed=0)
    )
    rows = summary(ar_log, sv_log)
    save_rows("multiservice", rows)

    print()
    print("Multi-service slicing — independent EdgeBOL per slice")
    print(render_table(
        ["slice", "initial cost", "final cost", "delay viol.", "mAP viol.",
         "final res", "final airtime"],
        [[r["slice"], r["initial_cost"], r["final_cost"],
          r["delay_violation_rate"], r["map_violation_rate"],
          r["final_resolution"], r["final_airtime"]] for r in rows],
    ))

    by_slice = {r["slice"]: r for r in rows}
    # The paper's claim: per-slice agents keep each service within its
    # own constraints despite the shared-resource coupling.
    for r in rows:
        assert r["delay_violation_rate"] < 0.15
        assert r["map_violation_rate"] < 0.10
    # The accuracy slice must hold high resolution (rho_min = 0.6);
    # the lax-delay slice exploits its slack to cut cost.
    assert by_slice["surveillance"]["final_resolution"] > 0.85
    assert (
        by_slice["surveillance"]["final_cost"]
        < by_slice["surveillance"]["initial_cost"] * 1.02
    )
