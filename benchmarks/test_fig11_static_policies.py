"""Figure 11: converged control policies vs delta2 per constraint set.

Shares the reduced sweep of Fig. 10 (the same experiment produces both
figures in the paper).
"""

from bench_utils import run_once, save_rows

from repro.experiments.static import CONSTRAINT_SETTINGS, run_static_cell
from repro.testbed.config import TestbedConfig
from repro.utils.ascii import render_table

DELTA2_VALUES = (1.0, 64.0)
TESTBED = TestbedConfig(n_levels=9)


def run_sweep():
    results = []
    for constraints in CONSTRAINT_SETTINGS:
        for delta2 in DELTA2_VALUES:
            results.append(
                run_static_cell(
                    constraints, delta2, n_periods=120, testbed=TESTBED
                )
            )
    return results


def test_fig11_static_policies(benchmark):
    results = run_once(benchmark, run_sweep)
    save_rows("fig11_static_policies", [r.as_dict() for r in results])

    print()
    print("Figure 11 — converged mean policies vs delta2")
    print(render_table(
        ["d_max", "rho_min", "delta2", "resolution", "airtime", "gpu", "mcs"],
        [
            [
                r.d_max_s, r.rho_min, r.delta2, r.resolution, r.airtime,
                r.gpu_speed, r.mcs_fraction,
            ]
            for r in results
        ],
    ))

    by_cell = {(r.d_max_s, r.rho_min, r.delta2): r for r in results}

    # Paper shapes for the lax setting: small delta2 -> cheap server
    # policies (low GPU speed) compensated by high radio resources;
    # large delta2 -> cheaper radio (lower airtime and/or resolution)
    # compensated by higher GPU speed.
    lax_low = by_cell[(0.5, 0.4, 1.0)]
    lax_high = by_cell[(0.5, 0.4, 64.0)]
    assert lax_low.gpu_speed < 0.6
    # Radio gets cheaper as delta2 grows: lower airtime and/or lower
    # resolution, with the MCS cap not decreasing (higher MCS drains
    # the BS less at this load, Fig. 5).
    assert (
        lax_high.airtime < lax_low.airtime - 0.02
        or lax_high.resolution < lax_low.resolution - 0.02
    )
    assert lax_high.mcs_fraction >= lax_low.mcs_fraction - 0.15

    # Stringent setting: little room to move — policies stay near max
    # resources for every delta2 (the paper's "roughly consistent").
    for delta2 in DELTA2_VALUES:
        r = by_cell[(0.3, 0.6, delta2)]
        assert r.resolution > 0.85
        assert r.airtime > 0.85
