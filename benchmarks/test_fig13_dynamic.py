"""Figure 13: policy and safe-set evolution under fast context dynamics.

Paper setting: untrained EdgeBOL, SNR sweeping 5-38 dB, delta2 = 8,
150 periods.
"""

import numpy as np
from bench_utils import run_once, save_rows

from repro.experiments.dynamic import DynamicSetting, run_dynamic
from repro.testbed.config import TestbedConfig
from repro.utils.ascii import render_chart

SETTING = DynamicSetting(n_periods=150)
TESTBED = TestbedConfig(n_levels=9)


def test_fig13_dynamic(benchmark):
    log = run_once(
        benchmark, lambda: run_dynamic(SETTING, seed=0, testbed=TESTBED)
    )
    save_rows("fig13_dynamic", log.as_dict())

    print()
    print("Figure 13 — dynamic contexts (delta2 = 8)")
    print(render_chart({"SNR dB": log.snr_db}, title="context: mean SNR"))
    print(render_chart({"|S_t|": log.safe_set_size}, title="safe-set size"))
    print(render_chart(
        {
            "gpu": log.gpu_speed,
            "res": log.resolution,
            "airtime": log.airtime,
            "mcs": log.mcs_fraction,
        },
        title="policies over time",
    ))

    snrs = np.array(log.snr_db)
    sizes = np.array(log.safe_set_size, dtype=float)

    # Shape 1: the context really sweeps the 5-38 dB band.
    assert snrs.max() - snrs.min() > 25.0

    # Shape 2: the safe set grows from S0 and keeps adapting
    # (fluctuations with the context, no collapse back to |S| = 1).
    assert sizes[0] <= 5
    assert sizes[-30:].min() >= 1
    assert sizes.max() > 20

    # Shape 3: knowledge transfers across contexts — in the last sweep
    # cycle the agent no longer pays the initial exploration cost
    # (its median cost beats the first cycle's).
    cycle = SETTING.cycle_period
    first_cycle = np.median(log.cost[:cycle])
    last_cycle = np.median(log.cost[-cycle:])
    assert last_cycle <= first_cycle * 1.05
