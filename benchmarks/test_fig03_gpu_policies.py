"""Figure 3: service/GPU delay vs server power across GPU-speed panels."""

from bench_utils import group_mean, run_once, save_rows

from repro.experiments import profiling
from repro.testbed.scenarios import static_scenario
from repro.utils.ascii import render_table


def test_fig03_gpu_policies(benchmark):
    env = static_scenario(mean_snr_db=35.0, rng=0)
    rows = run_once(
        benchmark, lambda: profiling.fig3_gpu_policies(env, dots_per_point=8)
    )
    save_rows("fig03_gpu_policies", rows)

    mean_delay = group_mean(rows, ("gpu_speed", "resolution"), "delay_ms")
    mean_gpu_delay = group_mean(rows, ("gpu_speed", "resolution"), "gpu_delay_ms")
    mean_power = group_mean(rows, ("gpu_speed", "resolution"), "server_power_w")
    table = [
        [g, r, mean_power[(g, r)], mean_delay[(g, r)], mean_gpu_delay[(g, r)]]
        for (g, r) in sorted(mean_delay)
    ]
    print()
    print("Figure 3 — delay & GPU delay vs server power (GPU panels)")
    print(render_table(
        ["gpu speed", "resolution", "server W", "delay ms", "gpu delay ms"],
        table,
    ))

    # Paper shapes: (i) higher GPU speed -> lower GPU delay & higher
    # power; (ii) higher resolution *eases* the per-image GPU work;
    # (iii) low-res images raise server power via request rate.
    assert mean_gpu_delay[(0.1, 0.5)] > mean_gpu_delay[(1.0, 0.5)]
    assert mean_power[(1.0, 0.5)] > mean_power[(0.1, 0.5)]
    for gpu_speed in (0.1, 0.45, 1.0):
        assert mean_gpu_delay[(gpu_speed, 0.25)] > mean_gpu_delay[(gpu_speed, 1.0)]
        assert mean_power[(gpu_speed, 0.25)] > mean_power[(gpu_speed, 1.0)]
