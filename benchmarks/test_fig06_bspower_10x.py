"""Figure 6: BS power vs radio policies at 10x emulated load."""

from bench_utils import group_mean, run_once, save_rows

from repro.experiments import profiling
from repro.utils.ascii import render_table


def test_fig06_bs_power_vs_mcs_10x(benchmark):
    rows = run_once(
        benchmark,
        lambda: profiling.fig6_bs_power_vs_mcs_10x(dots_per_point=5),
    )
    save_rows("fig06_bspower_10x", rows)

    mean_power = group_mean(
        rows, ("airtime", "resolution", "mcs_policy"), "bs_power_w"
    )
    print()
    print("Figure 6 — BS power vs MCS policy (10x load), airtime=1.0")
    table = [
        [r, m, mean_power[(1.0, r, m)]]
        for r in (0.25, 1.0)
        for m in sorted({row["mcs_policy"] for row in rows})
    ]
    print(render_table(["resolution", "mcs policy", "BS power W"], table))

    # Paper's regime flip at high load: for HIGH-resolution traffic the
    # slice saturates and higher MCS *raises* BS power, while for
    # LOW-resolution traffic higher MCS still lowers it.
    assert mean_power[(1.0, 1.0, 1.0)] > mean_power[(1.0, 1.0, 0.6)]
    assert mean_power[(1.0, 0.25, 1.0)] < mean_power[(1.0, 0.25, 0.6)]
