"""Figure 12: optimality gap with multiple heterogeneous users.

Paper setting: user 1 at SNR 30 dB, each further user 20% lower,
d_max = 2 s, rho_min = 0.6, delta2 in {1, 2, 4, 8}.  Reduced sweep
(N in {2, 4, 6}, delta2 in {1, 8}, 7-level grid); paper-scale via
``repro.experiments.heterogeneous.run_heterogeneous_sweep()``.
"""

from bench_utils import run_once, save_rows

from repro.experiments.heterogeneous import run_heterogeneous_cell
from repro.testbed.config import TestbedConfig
from repro.utils.ascii import render_table

USER_COUNTS = (2, 4, 6)
DELTA2_VALUES = (1.0, 8.0)
TESTBED = TestbedConfig(n_levels=7)


def run_sweep():
    results = []
    for delta2 in DELTA2_VALUES:
        for n_users in USER_COUNTS:
            results.append(
                run_heterogeneous_cell(
                    n_users, delta2, n_periods=130, testbed=TESTBED
                )
            )
    return results


def test_fig12_heterogeneous(benchmark):
    results = run_once(benchmark, run_sweep)
    save_rows("fig12_heterogeneous", [r.as_dict() for r in results])

    print()
    print("Figure 12 — EdgeBOL vs offline oracle, heterogeneous users")
    print(render_table(
        ["delta2", "users", "EdgeBOL cost", "oracle cost", "gap",
         "delay viol.", "mAP viol."],
        [
            [r.delta2, r.n_users, r.edgebol_cost, r.oracle_cost, r.gap,
             r.delay_violation_rate, r.map_violation_rate]
            for r in results
        ],
    ))

    # Paper shapes: (i) gap stays small (they report ~2%; we allow a
    # wider band for the shorter training), (ii) cost grows with the
    # number of users, (iii) constraints hold with high probability.
    for r in results:
        assert r.gap < 0.20
        assert r.delay_violation_rate < 0.15
        assert r.map_violation_rate < 0.10
    for delta2 in DELTA2_VALUES:
        costs = [r.edgebol_cost for r in results if r.delta2 == delta2]
        assert costs[-1] > costs[0]  # 6 users cost more than 2
