"""Figure 9: convergence of EdgeBOL across delta2 values.

Paper setting: static context (SNR 35 dB), delta1 = 1 mu/W,
rho_min = 0.5, d_max = 0.4 s, 150 periods, 10 repetitions, delta2 in
{1, 2, 4, 8, 16, 32, 64}.  This benchmark runs a reduced sweep
(delta2 in {1, 8, 64}, 3 repetitions, 120 periods, 9-level grid) —
the full parameterisation is
``repro.experiments.convergence.run_convergence_sweep()``.
"""

import numpy as np
from bench_utils import run_once, save_rows

from repro.experiments.convergence import (
    ConvergenceSetting,
    convergence_time,
    run_convergence,
)
from repro.experiments.runner import band
from repro.utils.ascii import render_chart, render_table

DELTA2_VALUES = (1.0, 8.0, 64.0)
SETTING = ConvergenceSetting(n_periods=120, n_repetitions=3, n_levels=9)


def run_sweep():
    return {
        delta2: [
            run_convergence(delta2, setting=SETTING, seed=seed)
            for seed in range(SETTING.n_repetitions)
        ]
        for delta2 in DELTA2_VALUES
    }


def test_fig09_convergence(benchmark):
    results = run_once(benchmark, run_sweep)

    rows = []
    table = []
    for delta2, logs in results.items():
        median_cost, _, _ = band(logs, "cost")
        for t, value in enumerate(median_cost):
            rows.append({"delta2": delta2, "t": t, "median_cost": value})
        conv_times = [convergence_time(log) for log in logs]
        delay_viols = [log.violation_rates(burn_in=40)[0] for log in logs]
        map_viols = [log.violation_rates(burn_in=40)[1] for log in logs]
        table.append([
            delta2,
            float(np.mean(median_cost[:5])),
            float(np.mean(median_cost[-20:])),
            float(np.median(conv_times)),
            float(np.mean(delay_viols)),
            float(np.mean(map_viols)),
            float(np.mean([log.tail_mean("server_power_w") for log in logs])),
            float(np.mean([log.tail_mean("bs_power_w") for log in logs])),
        ])
    save_rows("fig09_convergence", rows)

    print()
    print("Figure 9 — convergence per delta2 (median across repetitions)")
    print(render_table(
        [
            "delta2", "initial cost", "final cost", "median conv. time",
            "delay viol.", "mAP viol.", "server W", "BS W",
        ],
        table,
    ))
    series = {
        f"d2={delta2:g}": [
            r["median_cost"] for r in rows if r["delta2"] == delta2
        ]
        for delta2 in DELTA2_VALUES
    }
    print(render_chart(series, title="median cost u_t over time"))

    # Paper shapes: cost converges within tens of periods; higher
    # delta2 means higher cost level; constraints hold on convergence.
    for delta2, logs in results.items():
        for log in logs:
            assert convergence_time(log, tolerance=0.15) < 80
            delay_viol, map_viol = log.violation_rates(burn_in=40)
            assert delay_viol < 0.15
            assert map_viol < 0.1
    final = {row[0]: row[2] for row in table}
    assert final[64.0] > final[8.0] > final[1.0]
