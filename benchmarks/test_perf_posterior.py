"""Perf benchmark: per-period posterior sweep across numerics modes.

Times one orchestration period's three-head posterior sweep over the
paper's full 11^4 = 14641-point control grid at
N in {100, 250, 500, 1000, 2000} retained observations, per numerics
mode:

* **direct** — what Algorithm 1 cost before the engine: one
  ``GaussianProcess.predict`` per head over the joint grid, i.e. a
  fresh ``N x M`` cross-kernel plus an ``O(N^2 M)`` triangular solve
  every period (skipped above N = 1000, where it is pointlessly slow);
* **dense** — one :class:`SurrogateEngine` sweep (per-head loops, the
  bit-identity reference), including the incremental cross-kernel and
  solve extension for the observation added that period, plus the pure
  cache-hit re-query path;
* **batched** — the same sweep through stacked multi-head linear
  algebra (``REPRO_BATCHED_HEADS``); its :class:`EngineStats` counters
  are asserted identical to the dense ones, tally for tally;
* **sparse** — heads bounded to a 200-observation budget with the
  inducing-subset eviction policy of :mod:`repro.core.sparse`; this is
  the mode whose per-period cost must stay *flat* as the nominal N
  grows (the flat-cost claim: N = 2000 within 1.5x of N = 250).

Emits ``BENCH_posterior.json`` at the repo root and asserts the >= 5x
engine-vs-direct speedup at N = 500, non-zero cache hits, dense/batched
counter identity, and the sparse flat-cost bound.
"""

import json
import time
from pathlib import Path

import numpy as np

from repro.core.gp import GaussianProcess
from repro.core.kernels import Matern
from repro.core.posterior import SurrogateEngine
from repro.core.sparse import make_eviction_policy
from repro.utils.grids import cartesian_grid, linear_levels

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_posterior.json"

CONTEXT_DIM = 3
N_LEVELS = 11  # |X| = 14641, the paper's grid
N_VALUES = (100, 250, 500, 1000, 2000)
#: Timed periods per N (median reported); direct at N=1000 is slow.
REPS = {100: 5, 250: 5, 500: 3, 1000: 2, 2000: 3}
#: Timed periods for the sparse mode (cheap at every N, so always
#: enough reps for a noise-robust minimum).
SPARSE_REPS = 6
#: Largest N still timed through per-head ``predict`` (the O(N^2 M) wall).
DIRECT_MAX_N = 1000
#: Largest N where engine-vs-direct moments are verified allclose.
VERIFY_MAX_N = 500
SPEEDUP_TARGET_AT_500 = 5.0
#: Sparse-mode observation budget and eviction granularity.
SPARSE_BUDGET = 200
SPARSE_BLOCK = 50
#: Flat-cost bound: sparse per-period seconds at N=2000 vs at N=250.
FLAT_COST_FACTOR = 1.5

HEAD_SPECS = (
    ("cost", 60.0**2, 4.0, 0.0),
    ("delay", 0.15**2, 4e-4, 0.8),
    ("map", 0.15**2, 4e-4, 0.0),
)


def make_dataset(n_obs, rng):
    """Deterministic training set + per-period additions for one N."""
    x = rng.random((n_obs, CONTEXT_DIM + 4))
    y = rng.normal(size=(n_obs, len(HEAD_SPECS)))
    context = rng.random(CONTEXT_DIM)
    adds = [
        (np.concatenate([context, rng.random(4)]),
         rng.normal(size=len(HEAD_SPECS)))
        for _ in range(max(REPS[n_obs], SPARSE_REPS))
    ]
    return x, y, context, adds


def build_heads(x, y, sparse):
    """The three benchmark heads, optionally budget-bounded (sparse).

    Sparse heads are seeded with a ``fit`` over the first budget-sized
    chunk and then stream the rest through ``add`` so the eviction
    policy actually churns, exactly as a long run would.
    """
    lengthscales = np.full(CONTEXT_DIM + 4, 0.8)
    budget_kwargs = {}
    if sparse:
        budget_kwargs = {
            "max_observations": SPARSE_BUDGET,
            "eviction_block": SPARSE_BLOCK,
            "eviction_policy": make_eviction_policy(lengthscales),
        }
    heads = {}
    for column, (name, output_scale, noise, prior) in enumerate(HEAD_SPECS):
        gp = GaussianProcess(
            Matern(lengthscales, output_scale=output_scale),
            noise_variance=noise,
            prior_mean=prior,
            **budget_kwargs,
        )
        n = x.shape[0]
        if sparse and n > SPARSE_BUDGET:
            gp.fit(x[:SPARSE_BUDGET], y[:SPARSE_BUDGET, column])
            for j in range(SPARSE_BUDGET, n):
                gp.add(x[j], float(y[j, column]))
        else:
            gp.fit(x, y[:, column])
        heads[name] = gp
    return heads


def time_mode(mode, x, y, context, adds, grid, n_reps):
    """Per-period engine/hit seconds for one numerics mode.

    Every mode replays a prefix of the identical observation stream, so
    counters and moments are comparable across modes (dense and batched
    replay the same ``n_reps``).  Reports the median (typical period)
    and the minimum (noise-robust intrinsic cost).  Returns the mode
    row plus the live engine and last batch for cross-mode assertions.
    """
    heads = build_heads(x, y, sparse=(mode == "sparse"))
    engine = SurrogateEngine(
        heads, grid, context_dim=CONTEXT_DIM, batched=(mode == "batched")
    )
    engine.posterior(context)  # amortised first-contact rebuild, untimed

    engine_times, hit_times = [], []
    batch = None
    for z, targets in adds[:n_reps]:
        for column, gp in enumerate(heads.values()):
            gp.add(z, float(targets[column]))

        started = time.perf_counter()
        batch = engine.posterior(context)
        engine_times.append(time.perf_counter() - started)

        # Same context, no new data: the pure cache-hit path (the grid
        # re-query a same-period safe-set/diagnostics consumer issues).
        started = time.perf_counter()
        engine.posterior(context)
        hit_times.append(time.perf_counter() - started)

    row = {
        "engine_s": float(np.median(engine_times)),
        "engine_min_s": float(np.min(engine_times)),
        "engine_hit_s": float(np.median(hit_times)),
        "engine_stats": engine.stats.snapshot(),
    }
    if mode == "sparse":
        row["budget"] = SPARSE_BUDGET
        row["eviction_block"] = SPARSE_BLOCK
        row["retained"] = int(next(iter(heads.values())).n_observations)
        row["evictions"] = int(next(iter(heads.values())).evictions)
    return row, heads, batch


def time_direct(heads, joint):
    """One per-head ``predict`` sweep (the pre-engine cost), timed."""
    started = time.perf_counter()
    posteriors = {name: gp.predict(joint) for name, gp in heads.items()}
    return time.perf_counter() - started, posteriors


def _counters(stats):
    """Engine counters without the (non-deterministic) wall time."""
    return {k: v for k, v in stats.items() if k != "wall_time_s"}


def bench_one_n(n_obs, rng, grid):
    """All modes at one retained-observation count N."""
    x, y, context, adds = make_dataset(n_obs, rng)
    modes = {}
    dense_row, dense_heads, dense_batch = time_mode(
        "dense", x, y, context, adds, grid, REPS[n_obs]
    )
    modes["dense"] = dense_row
    batched_row, _, batched_batch = time_mode(
        "batched", x, y, context, adds, grid, REPS[n_obs]
    )
    modes["batched"] = batched_row
    sparse_row, _, _ = time_mode(
        "sparse", x, y, context, adds, grid, SPARSE_REPS
    )
    modes["sparse"] = sparse_row

    # Batched mode must count work identically and agree numerically.
    assert _counters(batched_row["engine_stats"]) == \
        _counters(dense_row["engine_stats"]), (
            f"batched counters diverged at N={n_obs}: "
            f"{batched_row['engine_stats']} vs {dense_row['engine_stats']}"
        )
    for name in dense_batch.heads:
        np.testing.assert_allclose(
            batched_batch.mean(name), dense_batch.mean(name),
            atol=1e-6, rtol=1e-9,
        )
        np.testing.assert_allclose(
            batched_batch.variance(name), dense_batch.variance(name),
            atol=1e-8, rtol=1e-9,
        )

    direct_s = None
    if n_obs <= DIRECT_MAX_N:
        joint = np.empty((grid.shape[0], CONTEXT_DIM + grid.shape[1]))
        joint[:, :CONTEXT_DIM] = context
        joint[:, CONTEXT_DIM:] = grid
        direct_times = []
        for _ in range(REPS[n_obs]):
            elapsed, posteriors = time_direct(dense_heads, joint)
            direct_times.append(elapsed)
        direct_s = float(np.median(direct_times))
        if n_obs <= VERIFY_MAX_N:
            for name, (mean, var) in posteriors.items():
                np.testing.assert_allclose(dense_batch.mean(name), mean,
                                           atol=1e-8, rtol=0)
                np.testing.assert_allclose(dense_batch.variance(name), var,
                                           atol=1e-8, rtol=0)

    return {
        "n_observations": n_obs,
        "grid_points": int(grid.shape[0]),
        "heads": len(HEAD_SPECS),
        # Legacy top-level keys: the dense reference mode.
        "engine_s": dense_row["engine_s"],
        "engine_hit_s": dense_row["engine_hit_s"],
        "direct_s": direct_s,
        "speedup": (
            float(direct_s / dense_row["engine_s"])
            if direct_s is not None else None
        ),
        "engine_stats": dense_row["engine_stats"],
        "modes": modes,
    }


def test_perf_posterior_sweep():
    rng = np.random.default_rng(0)
    grid = cartesian_grid(*[linear_levels(N_LEVELS)] * 4)
    rows = [bench_one_n(n, rng, grid) for n in N_VALUES]
    payload = {
        "benchmark": "per-period three-head posterior sweep over 11^4 grid",
        "unit": "seconds (median per period)",
        "modes": {
            "dense": "per-head loops (bit-identity reference)",
            "batched": "stacked multi-head solves (REPRO_BATCHED_HEADS=1)",
            "sparse": (
                f"subset-of-data, budget {SPARSE_BUDGET} + "
                f"block {SPARSE_BLOCK} inducing-subset eviction"
            ),
        },
        "results": rows,
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    print()
    print(f"{'N':>6} {'direct s':>10} {'dense s':>10} {'batched s':>10} "
          f"{'sparse s':>10} {'hit s':>10} {'speedup':>9}")
    for row in rows:
        direct = (f"{row['direct_s']:>10.4f}"
                  if row["direct_s"] is not None else f"{'-':>10}")
        speedup = (f"{row['speedup']:>8.1f}x"
                   if row["speedup"] is not None else f"{'-':>9}")
        print(f"{row['n_observations']:>6} {direct} "
              f"{row['modes']['dense']['engine_s']:>10.4f} "
              f"{row['modes']['batched']['engine_s']:>10.4f} "
              f"{row['modes']['sparse']['engine_s']:>10.4f} "
              f"{row['engine_hit_s']:>10.4f} {speedup}")

    at_500 = next(r for r in rows if r["n_observations"] == 500)
    assert at_500["speedup"] >= SPEEDUP_TARGET_AT_500, (
        f"engine speedup at N=500 is {at_500['speedup']:.1f}x, "
        f"target {SPEEDUP_TARGET_AT_500}x"
    )
    for row in rows:
        stats = row["engine_stats"]
        assert stats["cache_hits"] >= REPS[row["n_observations"]] * 3, (
            f"repeat-context queries at N={row['n_observations']} should "
            f"hit the cache, stats: {stats}"
        )

    # The flat-cost claim: a budget-bounded sweep costs the same at
    # N=2000 as at N=250 (both retain <= budget + block points).
    sparse_250 = next(
        r for r in rows if r["n_observations"] == 250
    )["modes"]["sparse"]
    sparse_2000 = next(
        r for r in rows if r["n_observations"] == 2000
    )["modes"]["sparse"]
    assert sparse_2000["retained"] <= SPARSE_BUDGET + SPARSE_BLOCK
    # Compare minima: the intrinsic per-period cost, robust to CI
    # scheduling noise (medians are reported in the JSON alongside).
    assert sparse_2000["engine_min_s"] <= \
        FLAT_COST_FACTOR * sparse_250["engine_min_s"], (
            f"sparse per-period cost is not flat: "
            f"{sparse_2000['engine_min_s']:.4f}s at N=2000 vs "
            f"{sparse_250['engine_min_s']:.4f}s at N=250"
        )
