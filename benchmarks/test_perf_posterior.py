"""Perf benchmark: per-period posterior sweep, engine vs direct predict.

Times one orchestration period's three-head posterior sweep over the
paper's full 11^4 = 14641-point control grid at N in {100, 500, 1000}
retained observations:

* **direct** — what Algorithm 1 cost before the engine: one
  ``GaussianProcess.predict`` per head over the joint grid, i.e. a
  fresh ``N x M`` cross-kernel plus an ``O(N^2 M)`` triangular solve
  every period;
* **engine** — one :class:`SurrogateEngine` sweep, including the
  incremental cross-kernel/solve extension for the observation added
  that period;
* **engine (hit)** — a repeat sweep for the same context with no new
  observation, i.e. the pure cache-hit path (the earlier benchmark
  revision only timed the extension path, which is why its committed
  ``cache_hits`` read 0 — every timed query was preceded by three
  ``gp.add`` calls, so no query could ever take the hit branch).

Emits ``BENCH_posterior.json`` at the repo root (the start of the
repo's perf trajectory) and asserts the >= 5x speedup target at
N = 500 plus non-zero cache hits.
"""

import json
import time
from pathlib import Path

import numpy as np

from repro.core.gp import GaussianProcess
from repro.core.kernels import Matern
from repro.core.posterior import SurrogateEngine
from repro.utils.grids import cartesian_grid, linear_levels

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_posterior.json"

CONTEXT_DIM = 3
N_LEVELS = 11  # |X| = 14641, the paper's grid
N_VALUES = (100, 500, 1000)
#: Timed periods per N (median reported); direct at N=1000 is slow.
REPS = {100: 5, 500: 3, 1000: 2}
SPEEDUP_TARGET_AT_500 = 5.0


def make_heads(rng, n_obs):
    lengthscales = np.full(CONTEXT_DIM + 4, 0.8)
    heads = {
        "cost": GaussianProcess(
            Matern(lengthscales, output_scale=60.0**2), noise_variance=4.0
        ),
        "delay": GaussianProcess(
            Matern(lengthscales, output_scale=0.15**2),
            noise_variance=4e-4, prior_mean=0.8,
        ),
        "map": GaussianProcess(
            Matern(lengthscales, output_scale=0.15**2), noise_variance=4e-4
        ),
    }
    x = rng.random((n_obs, CONTEXT_DIM + 4))
    for gp in heads.values():
        gp.fit(x, rng.normal(size=n_obs))
    return heads


def time_sweeps(n_obs, rng):
    """Median per-period sweep seconds for both implementations."""
    grid = cartesian_grid(*[linear_levels(N_LEVELS)] * 4)
    heads = make_heads(rng, n_obs)
    engine = SurrogateEngine(heads, grid, context_dim=CONTEXT_DIM)
    context = rng.random(CONTEXT_DIM)
    joint = engine.joint_grid(context)
    engine.posterior(context)  # amortised first-contact rebuild, untimed

    engine_times, hit_times, direct_times = [], [], []
    for _ in range(REPS[n_obs]):
        z = np.concatenate([context, rng.random(4)])
        for gp in heads.values():
            gp.add(z, float(rng.normal()))

        started = time.perf_counter()
        batch = engine.posterior(context)
        engine_times.append(time.perf_counter() - started)

        # Same context, no new data: the pure cache-hit path (the grid
        # re-query a same-period safe-set/diagnostics consumer issues).
        started = time.perf_counter()
        engine.posterior(context)
        hit_times.append(time.perf_counter() - started)

        started = time.perf_counter()
        direct = {name: gp.predict(joint) for name, gp in heads.items()}
        direct_times.append(time.perf_counter() - started)

        for name, (mean, var) in direct.items():
            np.testing.assert_allclose(batch.mean(name), mean,
                                       atol=1e-8, rtol=0)
            np.testing.assert_allclose(batch.variance(name), var,
                                       atol=1e-8, rtol=0)

    return {
        "n_observations": n_obs,
        "grid_points": int(grid.shape[0]),
        "heads": len(heads),
        "engine_s": float(np.median(engine_times)),
        "engine_hit_s": float(np.median(hit_times)),
        "direct_s": float(np.median(direct_times)),
        "speedup": float(np.median(direct_times) / np.median(engine_times)),
        "engine_stats": engine.stats.snapshot(),
    }


def test_perf_posterior_sweep():
    rng = np.random.default_rng(0)
    rows = [time_sweeps(n, rng) for n in N_VALUES]
    payload = {
        "benchmark": "per-period three-head posterior sweep over 11^4 grid",
        "unit": "seconds (median per period)",
        "results": rows,
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    print()
    print(f"{'N':>6} {'direct s':>12} {'engine s':>12} {'hit s':>12} "
          f"{'speedup':>9}")
    for row in rows:
        print(f"{row['n_observations']:>6} {row['direct_s']:>12.4f} "
              f"{row['engine_s']:>12.4f} {row['engine_hit_s']:>12.4f} "
              f"{row['speedup']:>8.1f}x")

    at_500 = next(r for r in rows if r["n_observations"] == 500)
    assert at_500["speedup"] >= SPEEDUP_TARGET_AT_500, (
        f"engine speedup at N=500 is {at_500['speedup']:.1f}x, "
        f"target {SPEEDUP_TARGET_AT_500}x"
    )
    for row in rows:
        stats = row["engine_stats"]
        assert stats["cache_hits"] >= REPS[row["n_observations"]] * 3, (
            f"repeat-context queries at N={row['n_observations']} should "
            f"hit the cache, stats: {stats}"
        )
