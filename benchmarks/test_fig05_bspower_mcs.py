"""Figure 5: BS power vs radio policies (1x load)."""

from bench_utils import group_mean, run_once, save_rows

from repro.experiments import profiling
from repro.testbed.scenarios import static_scenario
from repro.utils.ascii import render_table


def test_fig05_bs_power_vs_mcs(benchmark):
    env = static_scenario(mean_snr_db=35.0, rng=0)
    rows = run_once(
        benchmark, lambda: profiling.fig5_bs_power_vs_mcs(env, dots_per_point=5)
    )
    save_rows("fig05_bspower_mcs", rows)

    mean_power = group_mean(rows, ("airtime", "resolution", "mcs_policy"), "bs_power_w")
    print()
    print("Figure 5 — BS power vs MCS policy (1x load), resolution=1.0")
    table = [
        [a, m, mean_power[(a, 1.0, m)]]
        for a in (0.2, 0.5, 1.0)
        for m in sorted({row["mcs_policy"] for row in rows})
    ]
    print(render_table(["airtime", "mcs policy", "BS power W"], table))

    # Paper shapes at low load: (i) higher MCS -> LOWER BS power,
    # (ii) more airtime -> higher BS power (higher request rate),
    # (iii) lower resolution -> smaller BS power footprint.
    assert mean_power[(1.0, 1.0, 0.4)] > mean_power[(1.0, 1.0, 1.0)]
    assert mean_power[(1.0, 1.0, 1.0)] > mean_power[(0.2, 1.0, 1.0)]
    assert mean_power[(1.0, 1.0, 1.0)] > mean_power[(1.0, 0.25, 1.0)]
    # Absolute range matches the 4-8 W the paper measures.
    values = list(mean_power.values())
    assert min(values) > 4.0 and max(values) < 9.0
