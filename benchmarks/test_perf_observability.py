"""Perf benchmark: decision-trace overhead on an EdgeBOL run.

Times the same seeded EdgeBOL loop three ways:

* **untraced** — no decision sink installed: ``make_tracer`` returns
  ``None`` and every agent hook is a single ``is not None`` check (run
  twice, so the pair's spread doubles as the measurement-noise yardstick);
* **traced (memory)** — a :class:`repro.obs.ListSink`: full record
  assembly (margins, price of safety, calibration z-scores, drift)
  without serialisation;
* **traced (jsonl)** — a :class:`~repro.telemetry.export.JsonlSink`:
  the real ``--trace-decisions`` path including per-line JSON + flush.

Emits ``BENCH_observability.json`` at the repo root and asserts the
disabled-mode cost is within the noise between the two untraced
timings, i.e. tracing is pay-for-what-you-use.  KPI equality between
the untraced and traced runs (the bit-identical guarantee) is asserted
on every rep, not just in the unit tests.
"""

import json
import time
from pathlib import Path

import numpy as np

from repro.core import EdgeBOL
from repro.experiments.runner import run_agent
from repro.obs import runtime as obs
from repro.testbed.config import CostWeights, ServiceConstraints, TestbedConfig
from repro.testbed.scenarios import static_scenario

RESULT_PATH = (
    Path(__file__).resolve().parent.parent / "BENCH_observability.json"
)

N_LEVELS = 5
N_PERIODS = 40
REPS = 3
#: The untraced/untraced ratio bounds the run-to-run noise; the
#: disabled-mode "overhead" must stay inside the same envelope with
#: this much headroom (generous: CI machines are noisy).
NOISE_HEADROOM = 1.5


def run_once(seed, sink_or_path=None):
    """One seeded run; returns (elapsed_s, cost_series)."""
    testbed = TestbedConfig(n_levels=N_LEVELS)
    env = static_scenario(
        mean_snr_db=35.0, rng=np.random.default_rng(seed), config=testbed
    )
    agent = EdgeBOL(
        testbed.control_grid(), ServiceConstraints(0.4, 0.5),
        CostWeights(1.0, 8.0),
    )
    started = time.perf_counter()
    if sink_or_path is None:
        log = run_agent(env, agent, N_PERIODS, oracle_cost=100.0)
    else:
        with obs.use(sink_or_path):
            log = run_agent(env, agent, N_PERIODS, oracle_cost=100.0)
    return time.perf_counter() - started, log.cost


def test_perf_observability_overhead(tmp_path):
    base_a, base_b, mem, jsonl = [], [], [], []
    reference_costs = None
    for rep in range(REPS):
        t_a, costs_a = run_once(rep)
        t_b, costs_b = run_once(rep)
        t_mem, costs_mem = run_once(rep, obs.ListSink())
        t_jsonl, costs_jsonl = run_once(
            rep, tmp_path / f"decisions_{rep}.jsonl"
        )
        assert costs_a == costs_b == costs_mem == costs_jsonl, (
            f"rep {rep}: traced KPIs diverged from untraced"
        )
        reference_costs = costs_a
        base_a.append(t_a)
        base_b.append(t_b)
        mem.append(t_mem)
        jsonl.append(t_jsonl)
    assert reference_costs is not None

    untraced_a = float(np.median(base_a))
    untraced_b = float(np.median(base_b))
    noise_ratio = max(untraced_a, untraced_b) / min(untraced_a, untraced_b)
    untraced = min(untraced_a, untraced_b)
    traced_mem = float(np.median(mem))
    traced_jsonl = float(np.median(jsonl))

    payload = {
        "benchmark": (
            f"decision-trace overhead on a {N_PERIODS}-period EdgeBOL run "
            f"({N_LEVELS}^4 grid, median of {REPS} reps)"
        ),
        "unit": "seconds per run",
        "results": {
            "untraced_s": untraced,
            "untraced_repeat_s": max(untraced_a, untraced_b),
            "noise_ratio": noise_ratio,
            "traced_memory_s": traced_mem,
            "traced_jsonl_s": traced_jsonl,
            "traced_memory_overhead": traced_mem / untraced - 1.0,
            "traced_jsonl_overhead": traced_jsonl / untraced - 1.0,
        },
        "bit_identical_kpis": True,
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    print()
    print(f"untraced     {untraced:.3f}s (repeat ratio {noise_ratio:.3f})")
    print(f"traced (mem) {traced_mem:.3f}s "
          f"(+{payload['results']['traced_memory_overhead'] * 100:.1f}%)")
    print(f"traced (jsonl) {traced_jsonl:.3f}s "
          f"(+{payload['results']['traced_jsonl_overhead'] * 100:.1f}%)")

    # Disabled-mode tracing must be free: the two untraced timings are
    # the same code path, so their spread *is* the noise floor, and a
    # regression that sneaks work into the disabled path would show up
    # as a systematic gap wider than that floor allows.
    assert noise_ratio <= NOISE_HEADROOM, (
        f"untraced repeat ratio {noise_ratio:.2f} exceeds {NOISE_HEADROOM} — "
        "either the machine is too noisy to benchmark or the disabled "
        "path stopped being free"
    )
    # Full tracing stays a modest multiple of the run itself.
    assert traced_jsonl <= 3.0 * untraced, (
        f"jsonl-traced run {traced_jsonl:.3f}s vs untraced {untraced:.3f}s"
    )
