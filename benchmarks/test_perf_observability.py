"""Perf benchmark: decision-trace and fleet-metrics overhead.

Two phases, both recording into ``BENCH_observability.json``:

**Decision traces** — times the same seeded EdgeBOL loop four ways:

* **untraced** — no decision sink installed: ``make_tracer`` returns
  ``None`` and every agent hook is a single ``is not None`` check (run
  twice, so the pair's spread doubles as the measurement-noise yardstick);
* **traced (memory)** — a :class:`repro.obs.ListSink`: full record
  assembly (margins, price of safety, calibration z-scores, drift)
  without serialisation;
* **traced (jsonl)** — a :class:`~repro.telemetry.export.JsonlSink`
  with ``flush_every=1``: the legacy flush-per-line path;
* **traced (jsonl, buffered)** — the same sink at its default batched
  flush, the current ``--trace-decisions`` path.

**Fleet metrics** — times a 32-cell stub-agent fleet with and without
a ``--metrics`` :class:`~repro.fleetobs.store.MetricStore` riding along
(KPI ingestion, alert/decision fan-in, sampled round tracing through
the bus), asserts the per-cell rows stay bit-identical, and gates the
ingestion overhead at ``FLEET_OVERHEAD_LIMIT``.  A query-latency phase
then times the store's range/rollup/aggregate/top-k reads.
"""

import json
import time
from pathlib import Path

import numpy as np

from repro.core import EdgeBOL
from repro.experiments.fleet import METRICS_TRACE_EVERY, run_fleet_cell_sim
from repro.experiments.runner import run_agent
from repro.fleetobs import MetricStore
from repro.obs import runtime as obs
from repro.telemetry.export import JsonlSink
from repro.testbed.config import (
    ControlPolicy,
    CostWeights,
    ServiceConstraints,
    TestbedConfig,
)
from repro.testbed.scenarios import static_scenario

RESULT_PATH = (
    Path(__file__).resolve().parent.parent / "BENCH_observability.json"
)

N_LEVELS = 5
N_PERIODS = 40
REPS = 3
#: The untraced/untraced ratio bounds the run-to-run noise; the
#: disabled-mode "overhead" must stay inside the same envelope with
#: this much headroom (generous: CI machines are noisy).
NOISE_HEADROOM = 1.5

#: Fleet-metrics phase: the ISSUE acceptance gate — a ``--metrics``
#: store on a 32-cell fleet may cost at most this fraction of the
#: uninstrumented run.
FLEET_OVERHEAD_LIMIT = 0.15
FLEET_CELLS = 32
FLEET_PERIODS = 30
FLEET_SEED = 11


def _merge_results(section: str, payload: dict) -> None:
    """Read-modify-write one section of ``BENCH_observability.json``.

    The two benchmark tests own disjoint sections and may run in any
    order (or alone), so each merges into whatever is already on disk.
    """
    merged = {}
    if RESULT_PATH.exists():
        try:
            merged = json.loads(RESULT_PATH.read_text())
        except ValueError:
            merged = {}
    merged[section] = payload
    RESULT_PATH.write_text(json.dumps(merged, indent=2) + "\n")


def run_once(seed, sink=None):
    """One seeded run; returns (elapsed_s, cost_series).

    ``sink`` may be None (untraced) or a decision sink; sinks are
    closed inside the timed region so flush cost is part of the figure.
    """
    testbed = TestbedConfig(n_levels=N_LEVELS)
    env = static_scenario(
        mean_snr_db=35.0, rng=np.random.default_rng(seed), config=testbed
    )
    agent = EdgeBOL(
        testbed.control_grid(), ServiceConstraints(0.4, 0.5),
        CostWeights(1.0, 8.0),
    )
    started = time.perf_counter()
    if sink is None:
        log = run_agent(env, agent, N_PERIODS, oracle_cost=100.0)
    else:
        with obs.use(sink):
            log = run_agent(env, agent, N_PERIODS, oracle_cost=100.0)
        sink.close()
    return time.perf_counter() - started, log.cost


def test_perf_observability_overhead(tmp_path):
    base_a, base_b, mem, jsonl, buffered = [], [], [], [], []
    reference_costs = None
    for rep in range(REPS):
        t_a, costs_a = run_once(rep)
        t_b, costs_b = run_once(rep)
        t_mem, costs_mem = run_once(rep, obs.ListSink())
        t_jsonl, costs_jsonl = run_once(
            rep, JsonlSink(tmp_path / f"decisions_{rep}.jsonl", flush_every=1)
        )
        t_buf, costs_buf = run_once(
            rep, JsonlSink(tmp_path / f"decisions_buf_{rep}.jsonl")
        )
        assert costs_a == costs_b == costs_mem == costs_jsonl == costs_buf, (
            f"rep {rep}: traced KPIs diverged from untraced"
        )
        reference_costs = costs_a
        base_a.append(t_a)
        base_b.append(t_b)
        mem.append(t_mem)
        jsonl.append(t_jsonl)
        buffered.append(t_buf)
    assert reference_costs is not None

    untraced_a = float(np.median(base_a))
    untraced_b = float(np.median(base_b))
    noise_ratio = max(untraced_a, untraced_b) / min(untraced_a, untraced_b)
    untraced = min(untraced_a, untraced_b)
    traced_mem = float(np.median(mem))
    traced_jsonl = float(np.median(jsonl))
    traced_buffered = float(np.median(buffered))

    payload = {
        "benchmark": (
            f"decision-trace overhead on a {N_PERIODS}-period EdgeBOL run "
            f"({N_LEVELS}^4 grid, median of {REPS} reps)"
        ),
        "unit": "seconds per run",
        "results": {
            "untraced_s": untraced,
            "untraced_repeat_s": max(untraced_a, untraced_b),
            "noise_ratio": noise_ratio,
            "traced_memory_s": traced_mem,
            "traced_jsonl_s": traced_jsonl,
            "traced_jsonl_buffered_s": traced_buffered,
            "traced_memory_overhead": traced_mem / untraced - 1.0,
            "traced_jsonl_overhead": traced_jsonl / untraced - 1.0,
            "traced_jsonl_buffered_overhead": (
                traced_buffered / untraced - 1.0
            ),
        },
        "bit_identical_kpis": True,
    }
    _merge_results("decision_traces", payload)

    print()
    print(f"untraced     {untraced:.3f}s (repeat ratio {noise_ratio:.3f})")
    print(f"traced (mem) {traced_mem:.3f}s "
          f"(+{payload['results']['traced_memory_overhead'] * 100:.1f}%)")
    print(f"traced (jsonl, flush/line) {traced_jsonl:.3f}s "
          f"(+{payload['results']['traced_jsonl_overhead'] * 100:.1f}%)")
    print(f"traced (jsonl, buffered)   {traced_buffered:.3f}s "
          f"(+{payload['results']['traced_jsonl_buffered_overhead'] * 100:.1f}%)")

    # Disabled-mode tracing must be free: the two untraced timings are
    # the same code path, so their spread *is* the noise floor, and a
    # regression that sneaks work into the disabled path would show up
    # as a systematic gap wider than that floor allows.
    assert noise_ratio <= NOISE_HEADROOM, (
        f"untraced repeat ratio {noise_ratio:.2f} exceeds {NOISE_HEADROOM} — "
        "either the machine is too noisy to benchmark or the disabled "
        "path stopped being free"
    )
    # Full tracing stays a modest multiple of the run itself.
    assert traced_jsonl <= 3.0 * untraced, (
        f"jsonl-traced run {traced_jsonl:.3f}s vs untraced {untraced:.3f}s"
    )
    # The buffered default must not cost more than the legacy
    # flush-per-line path (the point of batching writes).
    assert traced_buffered <= traced_jsonl * 1.10, (
        f"buffered jsonl {traced_buffered:.3f}s slower than "
        f"flush-per-line {traced_jsonl:.3f}s"
    )


class _StubAgent:
    """Constant mid-grid controller: zero learning cost, full plane."""

    def select(self, context):
        return ControlPolicy(
            resolution=0.5, airtime=0.5, gpu_speed=0.5, mcs_fraction=1.0
        )

    def observe(self, context, policy, observation):
        return float(observation.server_power_w + observation.bs_power_w)


def _fleet_once(metrics=None):
    """One seeded 32-cell stub fleet run -> (elapsed_s, rows_json)."""
    started = time.perf_counter()
    result = run_fleet_cell_sim(
        n_cells=FLEET_CELLS,
        n_periods=FLEET_PERIODS,
        seed=FLEET_SEED,
        levels=4,
        make_agent=_StubAgent,
        metrics=metrics,
        trace_rounds_every=METRICS_TRACE_EVERY,
    )
    elapsed = time.perf_counter() - started
    rows = json.dumps([
        (cell_id, log.as_rows())
        for cell_id, log in sorted(result.logs.items())
    ])
    return elapsed, rows


def _time_queries(store) -> dict:
    """Median query latencies (seconds) over the populated store."""
    cells = store.cells()
    mid = cells[len(cells) // 2]

    def _median_of(fn, reps=50):
        times = []
        for _ in range(reps):
            started = time.perf_counter()
            fn()
            times.append(time.perf_counter() - started)
        return float(np.median(times))

    return {
        "series_range_s": _median_of(
            lambda: store.series(mid, "cost", t_min=5, t_max=25)
        ),
        "rollups_s": _median_of(lambda: store.rollups(mid, "cost")),
        "aggregate_s": _median_of(lambda: store.aggregate("cost")),
        "top_k_s": _median_of(lambda: store.top_k("cost", k=5, agg="p95")),
    }


def test_perf_fleet_metrics_overhead():
    plain_times, metrics_times = [], []
    store = None
    for _ in range(REPS):
        t_plain, rows_plain = _fleet_once()
        store = MetricStore()
        t_metrics, rows_metrics = _fleet_once(metrics=store)
        assert rows_plain == rows_metrics, (
            "per-cell KPI rows diverged under --metrics"
        )
        plain_times.append(t_plain)
        metrics_times.append(t_metrics)

    plain = float(np.median(plain_times))
    instrumented = float(np.median(metrics_times))
    overhead = instrumented / plain - 1.0
    assert store is not None and store.ingested > 0
    queries = _time_queries(store)

    payload = {
        "benchmark": (
            f"fleet metrics-store overhead on a {FLEET_CELLS}-cell stub "
            f"fleet ({FLEET_PERIODS} periods, round tracing every "
            f"{METRICS_TRACE_EVERY} periods, median of {REPS} reps)"
        ),
        "unit": "seconds per fleet run",
        "results": {
            "plain_s": plain,
            "metrics_s": instrumented,
            "fleet_metrics_overhead": overhead,
            "overhead_limit": FLEET_OVERHEAD_LIMIT,
            "records_ingested": store.ingested,
            "spans_retained": len(store.spans()),
            "query_latency": queries,
        },
        "bit_identical_rows": True,
    }
    _merge_results("fleet_metrics", payload)

    print()
    print(f"plain fleet    {plain:.3f}s")
    print(f"with --metrics {instrumented:.3f}s (+{overhead * 100:.1f}%)")
    print(f"ingested {store.ingested} records, "
          f"{len(store.spans())} spans retained")
    for name, value in queries.items():
        print(f"query {name:>16} {value * 1e6:8.1f} us")

    assert overhead <= FLEET_OVERHEAD_LIMIT, (
        f"--metrics ingestion overhead {overhead:.1%} exceeds the "
        f"{FLEET_OVERHEAD_LIMIT:.0%} budget — raise METRICS_TRACE_EVERY "
        "or cheapen the ingest path"
    )
    # Queries must stay interactive: the dashboard calls dozens of them.
    assert max(queries.values()) < 0.05, f"store query too slow: {queries}"
