"""Figure 4: mAP vs server power for different image resolutions."""

from bench_utils import group_mean, run_once, save_rows

from repro.experiments import profiling
from repro.testbed.scenarios import static_scenario
from repro.utils.ascii import render_table


def test_fig04_precision_vs_server_power(benchmark):
    env = static_scenario(mean_snr_db=35.0, rng=0)
    rows = run_once(
        benchmark,
        lambda: profiling.fig4_precision_vs_server_power(env, dots_per_point=10),
    )
    save_rows("fig04_precision_serverpower", rows)

    mean_map = group_mean(rows, ("resolution",), "map")
    mean_power = group_mean(rows, ("resolution",), "server_power_w")
    resolutions = sorted({row["resolution"] for row in rows})
    table = [[r, mean_power[(r,)], mean_map[(r,)]] for r in resolutions]
    print()
    print("Figure 4 — mAP vs server power per resolution")
    print(render_table(["resolution", "server W", "mAP"], table))

    # Paper's surprising shape: higher mAP <-> LOWER server power
    # (high-res frames slow the request rate and ease the GPU).
    maps = [mean_map[(r,)] for r in resolutions]
    powers = [mean_power[(r,)] for r in resolutions]
    assert all(b > a for a, b in zip(maps, maps[1:]))
    assert all(b < a for a, b in zip(powers, powers[1:]))
