"""Ablations of the EdgeBOL design choices (Section 5 discussion)."""

from bench_utils import run_once, save_rows

from repro.experiments.ablations import (
    beta_ablation,
    kernel_ablation,
    safe_set_ablation,
)
from repro.testbed.config import TestbedConfig
from repro.utils.ascii import render_table

TESTBED = TestbedConfig(n_levels=7)


def _print(title, results):
    print()
    print(title)
    print(render_table(
        ["variant", "tail cost", "delay viol.", "mAP viol."],
        [
            [r.variant, r.tail_cost, r.delay_violation_rate,
             r.map_violation_rate]
            for r in results
        ],
    ))


def test_ablation_beta(benchmark):
    results = run_once(
        benchmark,
        lambda: beta_ablation(n_periods=90, testbed=TESTBED),
    )
    save_rows("ablation_beta", [r.as_dict() for r in results])
    _print("Ablation — confidence multiplier beta", results)
    by_variant = {r.variant: r for r in results}
    # A larger beta is more conservative: it cannot violate more than
    # the smallest beta by a wide margin.
    assert (
        by_variant["beta=4.0"].delay_violation_rate
        <= by_variant["beta=1.0"].delay_violation_rate + 0.1
    )


def test_ablation_kernel(benchmark):
    results = run_once(
        benchmark,
        lambda: kernel_ablation(n_periods=90, testbed=TESTBED),
    )
    save_rows("ablation_kernel", [r.as_dict() for r in results])
    _print("Ablation — Matern smoothness nu", results)
    # All kernels must keep the system within constraints most of the
    # time; the paper's nu = 3/2 is the default.
    for r in results:
        assert r.delay_violation_rate < 0.25
        assert r.tail_cost < 150.0


def test_ablation_safe_set(benchmark):
    results = run_once(
        benchmark,
        lambda: safe_set_ablation(n_periods=90, testbed=TESTBED),
    )
    save_rows("ablation_safe_set", [r.as_dict() for r in results])
    _print("Ablation — safe set vs penalised unconstrained GP", results)
    by_variant = {r.variant: r for r in results}
    safe = by_variant["safe-set (EdgeBOL)"]
    unsafe = by_variant["penalized GP (no safe set)"]
    # The safe set is what keeps violations near zero during learning.
    assert safe.delay_violation_rate <= unsafe.delay_violation_rate
