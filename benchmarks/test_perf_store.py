"""Perf benchmark: the content-addressed experiment store warm path.

Runs a registry-grid sweep of the ``static`` experiment (Figs. 10-11
cells at a reduced period budget) twice against one store directory:

* **cold** — empty store, every cell executes and writes through;
* **warm** — the same configuration again, every cell served from the
  store without executing (``SweepResult.store_hits == len(cells)``).

Times both phases plus the store's own overhead on the cold side (a
cold *unstored* baseline run), asserts the warm rerun is a real
cache hit (all cells served, rows bit-identical, no workers) and at
least :data:`SPEEDUP_TARGET` times faster than the cold run, and
emits ``BENCH_store.json`` at the repo root.  See ``docs/STORE.md``.
"""

import json
import time
from pathlib import Path

from repro.experiments import spec as spec_registry
from repro.experiments.parallel import run_sweep
from repro.store import ExperimentStore

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_store.json"

#: Registry grid benchmarked: static cells over three BS energy prices.
SWEEP = {"delta2": (1.0, 8.0, 64.0)}
SETTINGS = {"periods": 20, "levels": 5}
SEED = 7
#: Warm rerun must beat the cold run by at least this factor.  The real
#: margin is orders of magnitude (cells run 20 BO periods each; a hit
#: is one JSON read) — the target only guards against a broken cache.
SPEEDUP_TARGET = 5.0


def _run(store, tmp_path=None):
    """One timed sweep of the benchmark grid: ``(seconds, result)``."""
    spec = spec_registry.get("static")
    params = spec.resolve(SETTINGS)
    started = time.perf_counter()
    result = run_sweep(
        spec, params, seed=SEED, jobs=1, out=tmp_path,
        sweep_overrides=SWEEP, store=store,
    )
    return time.perf_counter() - started, result


def test_perf_store_warm_rerun(tmp_path):
    baseline_s, baseline = _run(store=None)

    store = tmp_path / "store"
    cold_s, cold = _run(store=store)
    assert cold.store_hits == 0

    warm_s, warm = _run(store=store)
    n_cells = len(warm.cells)
    assert warm.store_hits == n_cells, "warm rerun must hit on every cell"
    assert warm.pids == (), "warm rerun must not dispatch workers"
    assert json.dumps(warm.rows) == json.dumps(cold.rows), (
        "store-served rows must be bit-identical to the cold run's"
    )
    assert json.dumps(cold.rows) == json.dumps(baseline.rows), (
        "writing through to the store must not perturb results"
    )

    speedup = cold_s / warm_s
    index_bytes = ExperimentStore(store).index_path.stat().st_size
    blob_bytes = sum(
        path.stat().st_size
        for path in (store / "objects").rglob("*.json")
    )
    payload = {
        "benchmark": (
            "static registry grid, cold sweep vs warm store rerun"
        ),
        "unit": "seconds (one full sweep)",
        "cells": n_cells,
        "settings": {**SETTINGS, "sweep": {k: list(v) for k, v in
                                           SWEEP.items()}, "seed": SEED},
        "baseline_s": baseline_s,
        "cold_s": cold_s,
        "warm_s": warm_s,
        "speedup": speedup,
        "write_through_overhead_s": cold_s - baseline_s,
        "store_bytes": {"index": index_bytes, "blobs": blob_bytes},
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    print()
    print(f"{'phase':>22} {'seconds':>9}")
    print(f"{'cold (no store)':>22} {baseline_s:>9.3f}")
    print(f"{'cold (write-through)':>22} {cold_s:>9.3f}")
    print(f"{'warm (all hits)':>22} {warm_s:>9.3f}")
    print(f"{'speedup':>22} {speedup:>8.1f}x over {n_cells} cells")

    assert speedup >= SPEEDUP_TARGET, (
        f"warm store rerun is only {speedup:.1f}x faster than the cold "
        f"run (target {SPEEDUP_TARGET}x) — the cache is not saving work"
    )
