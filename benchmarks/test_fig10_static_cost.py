"""Figure 10: converged powers & normalised cost vs delta2, with the
exhaustive-search oracle as the dashed reference.

Reduced sweep (delta2 in {1, 4, 16, 64}, 9-level grid); the paper-scale
sweep is ``repro.experiments.static.run_static_sweep()``.
"""

from bench_utils import run_once, save_rows

from repro.experiments.static import CONSTRAINT_SETTINGS, run_static_cell
from repro.testbed.config import TestbedConfig
from repro.utils.ascii import render_table

DELTA2_VALUES = (1.0, 4.0, 16.0, 64.0)
TESTBED = TestbedConfig(n_levels=9)


def run_sweep():
    results = []
    for constraints in CONSTRAINT_SETTINGS:
        for delta2 in DELTA2_VALUES:
            results.append(
                run_static_cell(
                    constraints, delta2, n_periods=120, testbed=TESTBED
                )
            )
    return results


def test_fig10_static_cost(benchmark):
    results = run_once(benchmark, run_sweep)
    save_rows("fig10_static_cost", [r.as_dict() for r in results])

    print()
    print("Figure 10 — converged cost/powers vs delta2 (oracle dashed)")
    print(render_table(
        [
            "d_max", "rho_min", "delta2", "norm. cost", "oracle norm.",
            "server W", "BS W",
        ],
        [
            [
                r.d_max_s, r.rho_min, r.delta2, r.normalized_cost,
                r.oracle_normalized_cost, r.server_power_w, r.bs_power_w,
            ]
            for r in results
        ],
    ))

    by_cell = {(r.d_max_s, r.rho_min, r.delta2): r for r in results}

    # Shape 1: higher delta2 shifts power away from the BS (compare the
    # extremes for the lax setting, where EdgeBOL has most leeway).
    lax_low = by_cell[(0.5, 0.4, 1.0)]
    lax_high = by_cell[(0.5, 0.4, 64.0)]
    assert lax_high.bs_power_w < lax_low.bs_power_w

    # Shape 2: stricter constraints cost at least as much (per delta2).
    for delta2 in DELTA2_VALUES:
        lax = by_cell[(0.5, 0.4, delta2)]
        stringent = by_cell[(0.3, 0.6, delta2)]
        assert stringent.cost >= lax.cost * 0.95

    # Shape 3: EdgeBOL lands near the oracle for the lax/medium settings
    # (the paper reports near-optimal operation).
    for constraints in CONSTRAINT_SETTINGS[:2]:
        for delta2 in DELTA2_VALUES:
            r = by_cell[(constraints.d_max_s, constraints.rho_min, delta2)]
            assert r.cost <= r.oracle_cost * 1.35
