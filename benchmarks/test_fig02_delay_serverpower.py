"""Figure 2: service delay vs server power across airtime panels."""

from bench_utils import group_mean, run_once, save_rows

from repro.experiments import profiling
from repro.testbed.scenarios import static_scenario
from repro.utils.ascii import render_table


def test_fig02_delay_vs_server_power(benchmark):
    env = static_scenario(mean_snr_db=35.0, rng=0)
    rows = run_once(
        benchmark,
        lambda: profiling.fig2_delay_vs_server_power(env, dots_per_point=8),
    )
    save_rows("fig02_delay_serverpower", rows)

    mean_delay = group_mean(rows, ("airtime", "resolution"), "delay_ms")
    mean_power = group_mean(rows, ("airtime", "resolution"), "server_power_w")
    table = [
        [a, r, mean_power[(a, r)], mean_delay[(a, r)]]
        for (a, r) in sorted(mean_delay)
    ]
    print()
    print("Figure 2 — delay vs server power (airtime panels)")
    print(render_table(
        ["airtime", "resolution", "server W", "delay (ms)"], table
    ))

    # Paper shapes: (i) more airtime cuts delay by 65-80%,
    # (ii) more airtime raises server power (higher frame rate),
    # (iii) higher resolution raises delay within each panel.
    d_low = mean_delay[(0.2, 1.0)]
    d_high = mean_delay[(1.0, 1.0)]
    improvement = 1.0 - d_high / d_low
    assert 0.5 < improvement < 0.9
    assert mean_power[(1.0, 1.0)] > mean_power[(0.2, 1.0)]
    for airtime in (0.2, 0.5, 1.0):
        assert mean_delay[(airtime, 1.0)] > mean_delay[(airtime, 0.25)]
        assert mean_power[(airtime, 0.25)] > mean_power[(airtime, 1.0)]
