"""Baseline panorama: EdgeBOL vs SafeOpt vs LinUCB vs epsilon-greedy.

Reproduces the paper's Section 5 arguments empirically: SafeOpt's
uncertainty-sampling acquisition converges more slowly than EdgeBOL's
safe cost-LCB, linear contextual bandits are misspecified on these KPI
surfaces, and tabular methods drown in the 4-D control space.
"""

import numpy as np
from bench_utils import run_once, save_rows

from repro.bandit import (
    EpsilonGreedyBandit,
    LinUCBController,
    SafeOptController,
)
from repro.core import EdgeBOL
from repro.experiments.runner import run_agent
from repro.testbed.config import CostWeights, ServiceConstraints, TestbedConfig
from repro.testbed.scenarios import static_scenario
from repro.utils.ascii import render_table

TESTBED = TestbedConfig(n_levels=7)
N_PERIODS = 120


def run_all():
    constraints = ServiceConstraints(0.4, 0.5)
    weights = CostWeights(1.0, 1.0)
    agents = {
        "EdgeBOL": lambda: EdgeBOL(TESTBED.control_grid(), constraints, weights),
        "SafeOpt": lambda: SafeOptController(
            TESTBED.control_grid(), constraints, weights
        ),
        "LinUCB": lambda: LinUCBController(
            TESTBED.control_grid(), constraints, weights
        ),
        "eps-greedy": lambda: EpsilonGreedyBandit(
            TESTBED.control_grid(), constraints, weights, rng=0
        ),
    }
    logs = {}
    for name, factory in agents.items():
        env = static_scenario(mean_snr_db=35.0, rng=0, config=TESTBED)
        logs[name] = run_agent(env, factory(), N_PERIODS)
    return logs


def test_baseline_panorama(benchmark):
    logs = run_once(benchmark, run_all)

    rows = []
    for name, log in logs.items():
        delay_viol, map_viol = log.violation_rates()
        rows.append({
            "agent": name,
            "initial_cost": float(np.mean(log.cost[:5])),
            "final_cost": log.tail_mean("cost", 20),
            "delay_violation_rate": delay_viol,
            "map_violation_rate": map_viol,
        })
    save_rows("baselines", rows)
    print()
    print("Baseline panorama — static scenario, medium constraints")
    print(render_table(
        ["agent", "initial cost", "final cost", "delay viol.", "mAP viol."],
        [[r["agent"], r["initial_cost"], r["final_cost"],
          r["delay_violation_rate"], r["map_violation_rate"]] for r in rows],
    ))

    final = {r["agent"]: r["final_cost"] for r in rows}
    viol = {
        r["agent"]: r["delay_violation_rate"] + r["map_violation_rate"]
        for r in rows
    }
    # EdgeBOL converges at least as low as SafeOpt (the paper's claim
    # that SafeOpt's acquisition is overly slow).
    assert final["EdgeBOL"] <= final["SafeOpt"] + 2.0
    # The linear model cannot find the low-cost region.
    assert final["EdgeBOL"] < final["LinUCB"] - 5.0
    # Tabular epsilon-greedy pays for exploration with violations.
    assert viol["EdgeBOL"] <= viol["eps-greedy"]
