"""Figure 1: mAP vs service delay for different image resolutions."""

from bench_utils import group_mean, run_once, save_rows

from repro.experiments import profiling
from repro.testbed.scenarios import static_scenario
from repro.utils.ascii import render_table


def test_fig01_precision_vs_delay(benchmark):
    env = static_scenario(mean_snr_db=35.0, rng=0)
    rows = run_once(
        benchmark, lambda: profiling.fig1_precision_vs_delay(env, dots_per_point=10)
    )
    save_rows("fig01_precision_delay", rows)

    mean_map = group_mean(rows, ("resolution",), "map")
    mean_delay = group_mean(rows, ("resolution",), "delay_ms")
    table = [
        [r, mean_delay[(r,)], mean_map[(r,)]]
        for r in sorted({row["resolution"] for row in rows})
    ]
    print()
    print("Figure 1 — mAP vs service delay per image resolution")
    print(render_table(["resolution", "mean delay (ms)", "mean mAP"], table))

    # Paper shape: higher resolution -> higher delay AND higher mAP;
    # low resolution loses a large fraction of precision.
    resolutions = sorted({row["resolution"] for row in rows})
    delays = [mean_delay[(r,)] for r in resolutions]
    maps = [mean_map[(r,)] for r in resolutions]
    assert all(b > a for a, b in zip(delays, delays[1:]))
    assert all(b > a for a, b in zip(maps, maps[1:]))
    relative_drop = 1.0 - maps[0] / maps[-1]
    assert 0.4 < relative_drop < 0.8  # paper: 10-50%+ precision cost
