#!/usr/bin/env python
"""Check that relative markdown links in the repo resolve to real files.

Scans every tracked ``*.md`` file for inline links and images
(``[text](target)``), skips external schemes (http/https/mailto) and
pure in-page anchors, strips ``#fragment`` suffixes, resolves the rest
against the linking file's directory, and fails if any target is
missing.  No dependencies beyond the standard library; run from
anywhere inside the repo:

    python scripts/check_links.py [root]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Inline markdown link or image: [text](target) / ![alt](target).
#: Targets containing spaces or parentheses are not used in this repo.
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")

_SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")

#: Directories never scanned (generated or vendored content).
_SKIP_DIRS = {".git", "results", "__pycache__", ".pytest_cache", "node_modules"}


def iter_markdown_files(root: Path):
    """Yield every markdown file under ``root``, skipping junk dirs."""
    for path in sorted(root.rglob("*.md")):
        if any(part in _SKIP_DIRS for part in path.relative_to(root).parts):
            continue
        yield path


def strip_code_blocks(text: str) -> str:
    """Remove fenced code blocks so example links are not checked."""
    out, in_fence = [], False
    for line in text.splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if not in_fence:
            out.append(line)
    return "\n".join(out)


def check_file(path: Path, root: Path) -> list[str]:
    """Return one error string per broken relative link in ``path``."""
    errors = []
    for target in _LINK.findall(strip_code_blocks(path.read_text())):
        if target.startswith(_SKIP_PREFIXES):
            continue
        resolved = (path.parent / target.split("#", 1)[0]).resolve()
        if not resolved.exists():
            errors.append(
                f"{path.relative_to(root)}: broken link -> {target}"
            )
    return errors


def main(argv: list[str]) -> int:
    """Scan the repo (or ``argv[0]``) and report broken links."""
    root = Path(argv[0]).resolve() if argv else Path(__file__).resolve().parents[1]
    errors = []
    n_files = 0
    for path in iter_markdown_files(root):
        n_files += 1
        errors.extend(check_file(path, root))
    for error in errors:
        print(error, file=sys.stderr)
    print(f"checked {n_files} markdown files: "
          f"{'OK' if not errors else f'{len(errors)} broken links'}")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
