#!/usr/bin/env python
"""Check that the repo's markdown cross-references resolve, both ways.

Three checks over every tracked ``*.md`` file, no dependencies beyond
the standard library:

1. **Relative links** — inline links and images (``[text](target)``)
   must point at existing files.  External schemes (http/https/mailto)
   and pure in-page anchors are skipped; ``#fragment`` suffixes are
   stripped; in-page fragments of *local* markdown targets are checked
   against the target's headings.
2. **Backticked source paths** — prose references like
   ``` `src/repro/store/key.py` ``` must name real paths, so docs
   cannot silently drift from a refactored tree (the docs→source
   direction).
3. **Docs-index completeness** — every ``docs/*.md`` page must be
   linked from ``docs/INDEX.md``, and the README must link the index,
   so no guide is orphaned (the README→docs direction).

Run from anywhere inside the repo::

    python scripts/check_links.py [root]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Inline markdown link or image: [text](target) / ![alt](target).
#: Targets containing spaces or parentheses are not used in this repo.
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")

#: Backticked repo path: `src/...`, `docs/...`, `tests/...`, etc.
#: Requires at least one slash and a file extension, so flag spellings
#: (`--store DIR`) and dotted module names are not mistaken for paths.
_SOURCE_PATH = re.compile(
    r"`((?:src|docs|scripts|examples|tests|benchmarks)"
    r"/[A-Za-z0-9_.\-/]*\.[A-Za-z0-9_]+/?)`"
)

#: ATX heading, for anchor validation.
_HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)

_SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")

#: Directories never scanned (generated or vendored content).
_SKIP_DIRS = {".git", "results", "__pycache__", ".pytest_cache", "node_modules"}


def iter_markdown_files(root: Path):
    """Yield every markdown file under ``root``, skipping junk dirs."""
    for path in sorted(root.rglob("*.md")):
        if any(part in _SKIP_DIRS for part in path.relative_to(root).parts):
            continue
        yield path


def strip_code_blocks(text: str) -> str:
    """Remove fenced code blocks so example links are not checked."""
    out, in_fence = [], False
    for line in text.splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if not in_fence:
            out.append(line)
    return "\n".join(out)


def _anchor(heading: str) -> str:
    """GitHub-style anchor slug of one heading text."""
    slug = heading.strip().lower()
    slug = re.sub(r"[`*_]", "", slug)
    slug = re.sub(r"[^\w\- ]", "", slug)
    return slug.replace(" ", "-")


def _anchors(path: Path, cache: dict) -> set[str]:
    """All heading anchors of a markdown file (memoised)."""
    if path not in cache:
        cache[path] = {
            _anchor(m) for m in _HEADING.findall(path.read_text())
        }
    return cache[path]


def check_file(path: Path, root: Path, anchor_cache: "dict | None" = None
               ) -> list[str]:
    """Return one error string per broken reference in ``path``.

    Covers relative link targets, fragments into local markdown files,
    and backticked source paths.
    """
    anchor_cache = {} if anchor_cache is None else anchor_cache
    errors = []
    text = strip_code_blocks(path.read_text())
    rel = path.relative_to(root)
    for target in _LINK.findall(text):
        if target.startswith(_SKIP_PREFIXES):
            continue
        base, _, fragment = target.partition("#")
        resolved = (path.parent / base).resolve()
        if not resolved.exists():
            errors.append(f"{rel}: broken link -> {target}")
            continue
        if fragment and resolved.suffix == ".md":
            if _anchor(fragment) not in _anchors(resolved, anchor_cache):
                errors.append(f"{rel}: broken anchor -> {target}")
    for source in _SOURCE_PATH.findall(text):
        if not (root / source).exists():
            errors.append(f"{rel}: broken source path -> `{source}`")
    return errors


def check_docs_index(root: Path) -> list[str]:
    """README→docs direction: no orphan guide, index linked from README.

    Every ``docs/*.md`` page must be linked from ``docs/INDEX.md``, and
    ``README.md`` must link the index itself.
    """
    index = root / "docs" / "INDEX.md"
    if not index.exists():
        return ["docs/INDEX.md: missing documentation index"]
    errors = []
    linked = {
        (index.parent / t.split("#", 1)[0]).resolve()
        for t in _LINK.findall(strip_code_blocks(index.read_text()))
        if not t.startswith(_SKIP_PREFIXES)
    }
    for page in sorted((root / "docs").glob("*.md")):
        if page == index:
            continue
        if page.resolve() not in linked:
            errors.append(
                f"docs/INDEX.md: missing entry for {page.relative_to(root)}"
            )
    readme = root / "README.md"
    if readme.exists():
        targets = {
            (readme.parent / t.split("#", 1)[0]).resolve()
            for t in _LINK.findall(strip_code_blocks(readme.read_text()))
            if not t.startswith(_SKIP_PREFIXES)
        }
        if index.resolve() not in targets:
            errors.append("README.md: does not link docs/INDEX.md")
    return errors


def main(argv: list[str]) -> int:
    """Scan the repo (or ``argv[0]``) and report broken references."""
    root = Path(argv[0]).resolve() if argv else Path(__file__).resolve().parents[1]
    errors = []
    anchor_cache: dict = {}
    n_files = 0
    for path in iter_markdown_files(root):
        n_files += 1
        errors.extend(check_file(path, root, anchor_cache))
    errors.extend(check_docs_index(root))
    for error in errors:
        print(error, file=sys.stderr)
    print(f"checked {n_files} markdown files: "
          f"{'OK' if not errors else f'{len(errors)} broken references'}")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
